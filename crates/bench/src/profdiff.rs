//! The differential profile gate (`docs/PROFILING.md`).
//!
//! A pinned-seed workload runs under the profile plane and its ledger
//! is rendered as a flat `<key> <value>` snapshot: per-component cycles
//! for the graft and the kernel, the per-PC totals, the call-tree hot
//! functions and the span census. The snapshot is committed as
//! `crates/bench/profdiff.baseline`; [`compare`] diffs a fresh snapshot
//! against it and fails on any key drifting more than the tolerance —
//! so a cost-model change that silently shifts where cycles go breaks
//! CI until the baseline is regenerated on purpose
//! (`cargo run -p vino-bench -- --profdiff-write`).
//!
//! The virtual clock is deterministic, so on an unmodified tree every
//! key matches exactly; the tolerance exists to state intent (what
//! counts as a regression) rather than to absorb noise.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::rc::Rc;

use vino_sim::costs;
use vino_sim::metrics::Component;
use vino_sim::Cycles;

use crate::world::{build_profiled, Variant, World};
use vino_sim::metrics::MetricsPlane;
use vino_sim::profile::ProfilePlane;

/// Default per-key drift tolerance, in percent.
pub const DEFAULT_TOLERANCE_PCT: f64 = 2.0;

/// Invocations in the pinned workload.
pub const REPS: u64 = 50;

/// The pinned workload: lock the shared buffer, walk a small loop
/// through an intra-graft subroutine (so the call tree has depth), and
/// touch memory (so the safe variant pays SFI clamps).
pub const PROFDIFF_SRC: &str = "
    const r1, 0          ; shared-buffer lock handle
    call $lock
    call $shared_base
    mov r6, r0
    const r4, 0
    const r9, 8
loop:
    bgeu r4, r9, done
    calll work
    addi r4, r4, 1
    jmp loop
done:
    const r1, 0
    call $unlock         ; two-phase locking defers this to commit
    halt r5
work:
    loadw r10, [r6+0]
    add r5, r5, r10
    addi r5, r5, 3
    storew r5, [r6+4]
    ret
";

/// Runs the pinned workload and returns the world with its planes.
fn run_workload() -> (World, Rc<MetricsPlane>, Rc<ProfilePlane>) {
    let (mut w, mp, pp) = build_profiled(PROFDIFF_SRC, 8192, Variant::Safe, 1);
    w.graft.mem().graft_write_u32(0, 7);
    for _ in 0..REPS {
        // The dispatch indirection, charged at the call site as the
        // subsystems do.
        let cost = Cycles(costs::INDIRECTION_CYCLES);
        w.clock.charge(cost);
        mp.charge(Component::Indirection, cost);
        pp.charge(Component::Indirection, cost);
        let out = w.graft.invoke([0, 0, 0, 0]);
        assert!(
            matches!(out, vino_core::engine::InvokeOutcome::Ok { .. }),
            "profdiff workload must commit: {out:?}"
        );
    }
    (w, mp, pp)
}

/// Runs the pinned workload and renders the profile ledger as sorted
/// `<key> <value>` lines. Deterministic: the same tree always produces
/// the same bytes.
pub fn snapshot() -> String {
    let (w, _mp, pp) = run_workload();
    let tag = pp.tag("bench-graft");
    let attr = pp.attribution(tag).expect("interned at install");
    let mut kv: BTreeMap<String, u64> = BTreeMap::new();
    kv.insert("graft.invocations".into(), attr.invocations);
    kv.insert("graft.instrs".into(), pp.instrs_of(tag));
    for c in Component::ALL {
        kv.insert(format!("graft.comp.{}", c.label()), attr.cycles[c as usize]);
    }
    let kernel = pp.kernel_attribution();
    for c in Component::ALL {
        kv.insert(format!("kernel.comp.{}", c.label()), kernel[c as usize]);
    }
    let (graft_fn, sfi, hits) = pp.pc_totals(tag);
    kv.insert("pc.graft_fn_cycles".into(), graft_fn.get());
    kv.insert("pc.sfi_cycles".into(), sfi.get());
    kv.insert("pc.hits".into(), hits);
    for f in pp.top_functions(4) {
        kv.insert(format!("fn.{}@{}.self", f.graft, f.entry), f.self_cycles);
        kv.insert(format!("fn.{}@{}.sfi", f.graft, f.entry), f.sfi_cycles);
        kv.insert(format!("fn.{}@{}.calls", f.graft, f.entry), f.calls);
    }
    kv.insert("spans.count".into(), pp.span_count() as u64);
    kv.insert("spans.dropped".into(), pp.spans_dropped());
    kv.insert("clock.total_cycles".into(), w.clock.now().get());
    let mut out = String::new();
    for (k, v) in kv {
        let _ = writeln!(out, "{k} {v}");
    }
    out
}

/// Parses a snapshot back into its key/value map. Unparseable lines are
/// reported, not skipped — a truncated baseline must not pass as "no
/// keys drifted".
pub fn parse(text: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut kv = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (k, v) =
            line.rsplit_once(' ').ok_or_else(|| format!("line {}: no value in {line:?}", i + 1))?;
        let v: u64 =
            v.parse().map_err(|e| format!("line {}: bad value in {line:?}: {e}", i + 1))?;
        kv.insert(k.to_string(), v);
    }
    Ok(kv)
}

/// Diffs `current` against `baseline`. Returns the drift report: one
/// line per missing key, unexpected key, or value drifting more than
/// `tolerance_pct` percent. Empty report = gate passes.
pub fn compare(baseline: &str, current: &str, tolerance_pct: f64) -> Result<(), Vec<String>> {
    let (base, cur) = match (parse(baseline), parse(current)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            let mut errs = Vec::new();
            if let Err(e) = b {
                errs.push(format!("baseline unreadable: {e}"));
            }
            if let Err(e) = c {
                errs.push(format!("current unreadable: {e}"));
            }
            return Err(errs);
        }
    };
    let mut errs = Vec::new();
    for (k, &b) in &base {
        match cur.get(k) {
            None => errs.push(format!("{k}: in baseline but missing from current profile")),
            Some(&c) => {
                let drift = (c as f64 - b as f64).abs() / (b.max(1) as f64) * 100.0;
                if drift > tolerance_pct {
                    errs.push(format!(
                        "{k}: baseline {b}, current {c} ({drift:+.1}% > {tolerance_pct}%)"
                    ));
                }
            }
        }
    }
    for k in cur.keys() {
        if !base.contains_key(k) {
            errs.push(format!("{k}: new key not in baseline (regenerate with --profdiff-write)"));
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// The committed baseline's path.
pub fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("profdiff.baseline")
}

/// Runs the gate against the committed baseline: `Ok(report)` on pass,
/// `Err(lines)` on drift.
pub fn check() -> Result<String, Vec<String>> {
    let baseline = std::fs::read_to_string(baseline_path())
        .map_err(|e| vec![format!("{}: {e} (run --profdiff-write)", baseline_path().display())])?;
    let current = snapshot();
    compare(&baseline, &current, DEFAULT_TOLERANCE_PCT)?;
    Ok(format!("profdiff: {} keys within {DEFAULT_TOLERANCE_PCT}%", current.lines().count()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_deterministic() {
        assert_eq!(snapshot(), snapshot(), "same tree, same bytes");
    }

    #[test]
    fn clean_tree_passes_the_gate() {
        let s = snapshot();
        assert!(compare(&s, &s, DEFAULT_TOLERANCE_PCT).is_ok());
        // The committed baseline matches the live tree (regenerate with
        // UPDATE_GOLDENS=1 or `--profdiff-write` after intentional
        // cost-model changes).
        if std::env::var("UPDATE_GOLDENS").is_ok() {
            std::fs::write(baseline_path(), &s).expect("write baseline");
            return;
        }
        match check() {
            Ok(_) => {}
            Err(errs) => panic!("profdiff gate failed:\n{}", errs.join("\n")),
        }
    }

    #[test]
    fn cost_model_perturbation_fails_the_gate() {
        let s = snapshot();
        // A deliberate perturbation: every SFI cycle gets 50% more
        // expensive — the drift a silent cost-model edit would cause.
        let perturbed: String = s
            .lines()
            .map(|l| match l.rsplit_once(' ') {
                Some((k, v)) if k.contains("sfi") => {
                    let v: u64 = v.parse().unwrap();
                    format!("{k} {}\n", v * 3 / 2)
                }
                _ => format!("{l}\n"),
            })
            .collect();
        let errs = compare(&s, &perturbed, DEFAULT_TOLERANCE_PCT)
            .expect_err("a 50% SFI drift must fail the gate");
        assert!(errs.iter().any(|e| e.contains("pc.sfi_cycles")), "{errs:?}");
    }

    #[test]
    fn missing_and_new_keys_are_reported() {
        let base = "a 1\nb 2\n";
        let cur = "a 1\nc 3\n";
        let errs = compare(base, cur, 100.0).unwrap_err();
        assert!(errs.iter().any(|e| e.starts_with("b:")), "{errs:?}");
        assert!(errs.iter().any(|e| e.starts_with("c:")), "{errs:?}");
        // Unreadable input is an error, never a silent pass.
        assert!(compare("garbage", "a 1\n", 100.0).is_err());
    }
}

//! `tables` — regenerates every table and figure from the paper's
//! evaluation section against the simulated VINO kernel, plus the
//! debugging-plane subcommands (`bisect`, `shrink`, `replay`,
//! `timeline`, `checkpoints` — see `docs/DEBUGGING.md`), the
//! watch-plane subcommand (`watch` — see `docs/WATCH.md`), and the
//! replication census (`repl` — see `docs/REPLICATION.md`).
//!
//! Usage: `cargo run -p vino-bench --release [-- --reps N]`

use vino_bench::debug;
use vino_core::kernel::KernelConfig;
use vino_sim::TimelineOpts;

/// Flags shared by the debug subcommands.
struct DebugArgs {
    seed: u64,
    steps: usize,
    out: Option<String>,
    topts: TimelineOpts,
    /// `watch` only: run the dense trap storm instead of the generated
    /// one, so the alert stream and admission gate have real work.
    hostile: bool,
    /// `census` only: also write `BENCH_<name>.json` files.
    json: bool,
    /// `census` only: samples per measurement path.
    reps: usize,
}

fn parse_debug_args(args: &mut impl Iterator<Item = String>) -> DebugArgs {
    let mut d = DebugArgs {
        seed: 0xD15A57E5,
        steps: debug::DEFAULT_STEPS,
        out: None,
        topts: TimelineOpts::default(),
        hostile: false,
        json: false,
        reps: 25,
    };
    let need = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} expects a value");
            std::process::exit(2);
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                d.seed = need(args, "--seed").parse().unwrap_or_else(|_| {
                    eprintln!("--seed expects a u64");
                    std::process::exit(2);
                });
            }
            "--steps" => {
                d.steps = need(args, "--steps").parse().unwrap_or_else(|_| {
                    eprintln!("--steps expects a positive integer");
                    std::process::exit(2);
                });
            }
            "--out" => d.out = Some(need(args, "--out")),
            "--hostile" => d.hostile = true,
            "--json" => d.json = true,
            "--reps" => {
                d.reps = need(args, "--reps").parse().unwrap_or_else(|_| {
                    eprintln!("--reps expects a positive integer");
                    std::process::exit(2);
                });
            }
            "--time-range" => {
                let v = need(args, "--time-range");
                let Some((lo, hi)) = v.split_once("..") else {
                    eprintln!("--time-range expects LO..HI in virtual cycles");
                    std::process::exit(2);
                };
                match (lo.parse(), hi.parse()) {
                    (Ok(lo), Ok(hi)) => d.topts.range = Some((lo, hi)),
                    _ => {
                        eprintln!("--time-range expects LO..HI in virtual cycles");
                        std::process::exit(2);
                    }
                }
            }
            "--lanes" => {
                d.topts.lanes =
                    Some(need(args, "--lanes").split(',').map(str::to_string).collect());
            }
            "--width" => {
                d.topts.width = need(args, "--width").parse().unwrap_or_else(|_| {
                    eprintln!("--width expects a positive integer");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown debug argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    d
}

fn cmd_bisect(d: &DebugArgs) {
    let spec = debug::StormSpec::generate(d.seed, d.steps);
    let cfg = KernelConfig::default();
    match debug::bisect(&spec, &cfg) {
        Some(r) => {
            println!(
                "storm seed {} ({} steps): {} injections, invariant `{}` violated",
                d.seed, d.steps, r.total_injections, r.invariant
            );
            println!(
                "culprit: injection #{} — {:?} at site-visit {} (found in {} capped replays, \
                 ⌈log₂ {}⌉+1 = {})",
                r.culprit_cap,
                r.culprit.0,
                r.culprit.1,
                r.replays,
                r.total_injections,
                (64 - (r.total_injections.max(1) - 1).leading_zeros()) + 1,
            );
        }
        None => println!(
            "storm seed {} ({} steps): every invariant held — nothing to bisect",
            d.seed, d.steps
        ),
    }
}

fn cmd_shrink(d: &DebugArgs) {
    let spec = debug::StormSpec::generate(d.seed, d.steps);
    let cfg = KernelConfig::default();
    match debug::shrink(&spec, &cfg) {
        Some(r) => {
            let text = debug::serialize_reproducer(&r.spec, r.invariant);
            println!(
                "shrunk {} steps -> {} (invariant `{}`, {} replays)",
                r.original_steps,
                r.spec.steps.len(),
                r.invariant,
                r.replays
            );
            match &d.out {
                Some(path) => {
                    std::fs::write(path, &text).unwrap_or_else(|e| {
                        eprintln!("{path}: {e}");
                        std::process::exit(2);
                    });
                    println!("wrote {path}");
                }
                None => print!("{text}"),
            }
        }
        None => println!(
            "storm seed {} ({} steps): every invariant held — nothing to shrink",
            d.seed, d.steps
        ),
    }
}

fn cmd_replay(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    });
    let (spec, invariant) = debug::parse_reproducer(&text).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    });
    let opts = debug::StormOpts::default();
    let a = debug::run_storm(&spec, &opts);
    let b = debug::run_storm(&spec, &opts);
    let identical = a.trace == b.trace && a.metrics == b.metrics;
    match &a.violation {
        Some(v) if v.invariant == invariant => {
            println!("reproduced: `{}` — {}", v.invariant, v.detail)
        }
        Some(v) => {
            println!("violated `{}` (reproducer claims `{invariant}`): {}", v.invariant, v.detail)
        }
        None => println!("did NOT reproduce: every invariant held"),
    }
    println!("replay determinism: {}", if identical { "byte-identical" } else { "DIVERGED" });
    if !identical || a.violation.as_ref().map(|v| v.invariant) != Some(invariant.as_str()) {
        std::process::exit(1);
    }
}

fn cmd_timeline(d: &DebugArgs) {
    let spec = debug::StormSpec::generate(d.seed, d.steps);
    print!("{}", debug::storm_timeline(&spec, &KernelConfig::default(), &d.topts));
}

fn cmd_checkpoints(d: &DebugArgs) {
    let spec = debug::StormSpec::generate(d.seed, d.steps);
    let opts = debug::StormOpts { checkpoints: true, ..debug::StormOpts::default() };
    let full = debug::run_storm(&spec, &opts);
    println!(
        "storm seed {} ({} steps): {} checkpoints at a {} virtual-ms cadence",
        d.seed,
        d.steps,
        full.checkpoints.len(),
        opts.cfg.checkpoint_interval_ms
    );
    for cp in &full.checkpoints {
        println!("  {}", cp.summary());
    }
    if let Some(cp) = full.checkpoints.get(full.checkpoints.len() / 2) {
        let resumed = debug::resume_storm(&spec, cp, &opts);
        let identical = resumed.trace == full.trace && resumed.metrics == full.metrics;
        println!(
            "resume from step {}: {}",
            cp.at_step,
            if identical { "byte-identical to the uninterrupted run" } else { "DIVERGED" }
        );
        if !identical {
            std::process::exit(1);
        }
    }
}

fn cmd_watch(d: &DebugArgs) {
    let spec = if d.hostile {
        // A distilled hostile tenant: three back-to-back one-shot VM
        // traps (inside the 1000 ms abort-storm window) then a calm
        // tail, so alerts fire, the admission gate vetoes, and the
        // alert resolves — the same scenario the watch battery pins.
        let trap = debug::StormStep {
            pre_ms: 1,
            fault: debug::FaultChoice::VmTrap { offset: 0 },
            graft: 0,
            arg: 7,
            funded: true,
            read_block: 0,
        };
        let calm = debug::StormStep { fault: debug::FaultChoice::None, pre_ms: 50, ..trap };
        debug::StormSpec { seed: d.seed, steps: vec![trap, trap, trap, calm, calm, calm] }
    } else {
        debug::StormSpec::generate(d.seed, d.steps)
    };
    let opts = debug::StormOpts::default();
    let a = debug::run_storm(&spec, &opts);
    println!(
        "storm seed {} ({} steps): {} alert edges, admission {}",
        d.seed,
        spec.steps.len(),
        a.alerts.lines().count(),
        a.admission
    );
    if a.alerts.is_empty() {
        println!("alert stream: (empty — every window stayed under threshold)");
    } else {
        println!("alert stream:");
        print!("{}", a.alerts);
    }
    print!("{}", a.watch);
    // Self-test: the watch plane is deterministic — a same-seed replay
    // must reproduce the alert stream and decisions byte-for-byte.
    let b = debug::run_storm(&spec, &opts);
    let identical = a.alerts == b.alerts && a.watch == b.watch && a.admission == b.admission;
    println!("watch determinism: {}", if identical { "byte-identical" } else { "DIVERGED" });
    if !identical {
        std::process::exit(1);
    }
}

/// One replication-census row: a full workload at one window size over
/// a lossy wire, drained to convergence. Returns the drained harness's
/// committed-state fingerprint plus the serialized trace and metrics
/// for the determinism self-test.
fn repl_census_row(seed: u64, steps: usize, window: u64) -> (String, u64) {
    use std::rc::Rc;
    use vino_repl::{committed_state_fingerprint, ReplConfig, ReplHarness};
    use vino_sim::fault::FaultSite;

    let mut h = ReplHarness::new(seed, ReplConfig { window, ..Default::default() });
    let plane = Rc::clone(h.fault_plane());
    plane.set_rate(FaultSite::ReplShipDrop, 1, 5);
    plane.set_rate(FaultSite::ReplAckLoss, 1, 5);
    let report = h.run(steps);
    // Heal the wire and measure the drain: how many extra rounds the
    // window needs to converge after the workload stops.
    plane.set_rate(FaultSite::ReplShipDrop, 0, 1);
    plane.set_rate(FaultSite::ReplAckLoss, 0, 1);
    let mut drain_rounds = 0u64;
    while h.lag() > 0 {
        h.ship_round();
        drain_rounds += 1;
        assert!(drain_rounds <= 1024, "a healed wire must drain");
    }
    h.assert_replica_matches_committed_prefix();
    let secs = h.clock().now().as_ms() / 1000.0;
    let rate = if secs > 0.0 { h.acked() as f64 / secs } else { 0.0 };
    let row = format!(
        "{window:>6} | {:>7} | {:>11} | {:>7} | {:>9} | {:>12} | {rate:>9.1}",
        report.shipped, report.retransmits, report.dropped, report.final_lag, drain_rounds,
    );
    let fp = {
        let img = h.replica().fs.borrow().disk_image();
        committed_state_fingerprint(&img)
    };
    (row, fp)
}

fn cmd_repl(d: &DebugArgs) {
    println!(
        "replication census — seed {}, {} rounds, 1/5 frame drops, 1/5 ack loss \
         (docs/REPLICATION.md, EXPERIMENTS.md A8)",
        d.seed, d.steps
    );
    println!("window | shipped | retransmits | dropped | final lag | drain rounds | records/s");
    println!("-------+---------+-------------+---------+-----------+--------------+----------");
    let mut fingerprints = Vec::new();
    for window in [1u64, 2, 4, 8, 16] {
        let (row, fp) = repl_census_row(d.seed, d.steps, window);
        println!("{row}");
        fingerprints.push((window, fp));
    }
    // Every window size converges to the same committed state: the
    // window bounds in-flight records, never what is replicated.
    let (_, fp0) = fingerprints[0];
    for (window, fp) in &fingerprints {
        if *fp != fp0 {
            eprintln!("window {window} converged to a different committed state");
            std::process::exit(1);
        }
    }
    // Self-test: a same-seed replay of one row is byte-identical.
    let a = repl_census_row(d.seed, d.steps, 4);
    let b = repl_census_row(d.seed, d.steps, 4);
    let identical = a == b;
    println!("repl determinism: {}", if identical { "byte-identical" } else { "DIVERGED" });
    if !identical {
        std::process::exit(1);
    }
}

fn cmd_census(d: &DebugArgs) {
    println!(
        "bench census — {} reps, seed {}, {} repl rounds (EXPERIMENTS.md A9)",
        d.reps, d.seed, d.steps
    );
    for c in vino_bench::census::run_all(d.reps, d.seed, d.steps) {
        println!();
        println!("[{}]", c.name);
        print!("{}", c.text);
        if d.json {
            let file = c.json_file();
            std::fs::write(&file, &c.json).unwrap_or_else(|e| {
                eprintln!("{file}: {e}");
                std::process::exit(2);
            });
            println!("wrote {file}");
        }
    }
}

/// The lag-path walker over a live stalled harness: stall the ack
/// path, attribute where the oldest unacked record's age went, prove
/// the per-hop sum reconciles exactly with the watch plane's gauge,
/// then heal the wire and show convergence.
fn cmd_lagpath(d: &DebugArgs) {
    use vino_repl::{lag_path, ReplConfig, ReplHarness};
    use vino_sim::fault::FaultSite;

    let mut h = ReplHarness::new(d.seed, ReplConfig { window: 2, ..Default::default() });
    let plane = std::rc::Rc::clone(h.fault_plane());
    plane.set_rate(FaultSite::ReplAckLoss, 1, 1);
    h.run(d.steps.min(12));
    let s = h.shipping_state();
    println!(
        "shipping state: window {} ({} in flight), shipped {}, acked {}, applied {}, lag {}, \
         {} retransmits, {} drops",
        s.window,
        s.in_flight,
        s.last_shipped,
        s.last_acked,
        s.applied,
        s.lag,
        s.retransmits,
        s.frame_drops
    );
    let Some(report) = lag_path(&h) else {
        println!("lag 0 — nothing to attribute (try more --steps)");
        return;
    };
    print!("{}", report.render());
    let gauge = h.watch_plane().repl_lag_age();
    let reconciled = report.total == gauge;
    println!(
        "watch repl-lag-age gauge: {} cyc — {}",
        gauge.0,
        if reconciled { "reconciled exactly" } else { "DIVERGED" }
    );
    if !reconciled {
        std::process::exit(1);
    }
    plane.set_rate(FaultSite::ReplAckLoss, 0, 1);
    let mut rounds = 0;
    while h.lag() > 0 && rounds < 64 {
        h.ship_round();
        rounds += 1;
    }
    println!("healed wire: lag 0 after {rounds} drain rounds");
}

fn main() {
    let mut reps = 100usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "bisect" => {
                cmd_bisect(&parse_debug_args(&mut args));
                return;
            }
            "shrink" => {
                cmd_shrink(&parse_debug_args(&mut args));
                return;
            }
            "replay" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("replay expects a reproducer file path");
                    std::process::exit(2);
                });
                cmd_replay(&path);
                return;
            }
            "timeline" => {
                cmd_timeline(&parse_debug_args(&mut args));
                return;
            }
            "checkpoints" => {
                cmd_checkpoints(&parse_debug_args(&mut args));
                return;
            }
            "watch" => {
                cmd_watch(&parse_debug_args(&mut args));
                return;
            }
            "repl" => {
                cmd_repl(&parse_debug_args(&mut args));
                return;
            }
            "census" => {
                cmd_census(&parse_debug_args(&mut args));
                return;
            }
            "lagpath" => {
                cmd_lagpath(&parse_debug_args(&mut args));
                return;
            }
            "--reps" => {
                reps = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--reps expects a positive integer");
                    std::process::exit(2);
                });
            }
            "--profdiff" => match vino_bench::profdiff::check() {
                Ok(report) => {
                    println!("{report}");
                    return;
                }
                Err(errs) => {
                    eprintln!("profdiff gate failed:");
                    for e in errs {
                        eprintln!("  {e}");
                    }
                    std::process::exit(1);
                }
            },
            "--profdiff-write" => {
                let path = vino_bench::profdiff::baseline_path();
                std::fs::write(&path, vino_bench::profdiff::snapshot()).unwrap_or_else(|e| {
                    eprintln!("{}: {e}", path.display());
                    std::process::exit(2);
                });
                println!("wrote {}", path.display());
                return;
            }
            "--help" | "-h" => {
                println!("tables: regenerate the paper's evaluation tables");
                println!("  --reps N          samples per measurement path (default 100)");
                println!("  --profdiff        check the profile snapshot against the baseline");
                println!("  --profdiff-write  regenerate crates/bench/profdiff.baseline");
                println!();
                println!("debugging-plane subcommands (docs/DEBUGGING.md):");
                println!("  bisect      --seed S [--steps N]   first invariant-flipping injection");
                println!("  shrink      --seed S [--out FILE]  ddmin-minimal failing reproducer");
                println!("  replay FILE                        re-run a reproducer, twice");
                println!("  timeline    --seed S [--time-range A..B] [--lanes l1,l2] [--width W]");
                println!("  checkpoints --seed S               checkpoint cadence + resume check");
                println!(
                    "  watch       --seed S [--steps N] [--hostile]  alert stream + admission decisions"
                );
                println!(
                    "  repl        --seed S [--steps N]   replication census: convergence vs window size"
                );
                println!(
                    "  census      [--json] [--reps N]    machine-readable sweeps; --json writes BENCH_<name>.json"
                );
                println!(
                    "  lagpath     --seed S [--steps N]   critical-path lag attribution vs the watch gauge"
                );
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    println!(
        "VINO reproduction — 'Dealing With Disaster' (OSDI '96) evaluation tables\n\
         methodology: {reps} samples/path, top+bottom 10% trimmed (§4)\n"
    );
    println!("{}", vino_bench::full_report(reps));
}

//! `tables` — regenerates every table and figure from the paper's
//! evaluation section against the simulated VINO kernel.
//!
//! Usage: `cargo run -p vino-bench --release [-- --reps N]`

fn main() {
    let mut reps = 100usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reps" => {
                reps = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--reps expects a positive integer");
                    std::process::exit(2);
                });
            }
            "--profdiff" => match vino_bench::profdiff::check() {
                Ok(report) => {
                    println!("{report}");
                    return;
                }
                Err(errs) => {
                    eprintln!("profdiff gate failed:");
                    for e in errs {
                        eprintln!("  {e}");
                    }
                    std::process::exit(1);
                }
            },
            "--profdiff-write" => {
                let path = vino_bench::profdiff::baseline_path();
                std::fs::write(&path, vino_bench::profdiff::snapshot()).unwrap_or_else(|e| {
                    eprintln!("{}: {e}", path.display());
                    std::process::exit(2);
                });
                println!("wrote {}", path.display());
                return;
            }
            "--help" | "-h" => {
                println!("tables: regenerate the paper's evaluation tables");
                println!("  --reps N          samples per measurement path (default 100)");
                println!("  --profdiff        check the profile snapshot against the baseline");
                println!("  --profdiff-write  regenerate crates/bench/profdiff.baseline");
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    println!(
        "VINO reproduction — 'Dealing With Disaster' (OSDI '96) evaluation tables\n\
         methodology: {reps} samples/path, top+bottom 10% trimmed (§4)\n"
    );
    println!("{}", vino_bench::full_report(reps));
}

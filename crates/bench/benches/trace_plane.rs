//! Trace-plane microbenches: per-event emit cost, plus the
//! zero-allocation proof the design demands — once the ring is
//! allocated, emitting an event must never touch the heap.

use std::rc::Rc;

use criterion::alloc::CountingAlloc;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vino_sim::trace::{SfiKind, TraceEvent, TracePlane, VmExitKind};
use vino_sim::VirtualClock;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn events() -> [TraceEvent; 4] {
    [
        TraceEvent::VmWindow { instrs: 512, exit: VmExitKind::Preempt },
        TraceEvent::SfiCheck { kind: SfiKind::Clamp, pc: 17 },
        TraceEvent::TxnBegin { thread: 1, txn: 9, depth: 1 },
        TraceEvent::LockAcquire { lock: 3, thread: 1 },
    ]
}

fn bench(c: &mut Criterion) {
    let clock = VirtualClock::new();
    let tp = TracePlane::with_capacity(Rc::clone(&clock), 1024);

    // Fill well past capacity first, so the steady state under proof is
    // the wrapped ring (overwrite path), not the initial fill.
    for i in 0..4096u64 {
        tp.emit(TraceEvent::VmWindow { instrs: i, exit: VmExitKind::Halt });
    }

    // The proof: 100k emits across event kinds, zero allocations.
    let before = ALLOC.allocations();
    for i in 0..100_000u64 {
        clock.charge_us(1);
        tp.emit(events()[(i % 4) as usize]);
    }
    let delta = ALLOC.allocations() - before;
    assert_eq!(delta, 0, "trace emit hit the heap {delta} times in 100k events");
    println!("trace_plane/allocs_per_100k_emits        {delta:>12}");

    c.bench_function("trace_plane/emit", |b| {
        b.iter(|| tp.emit(black_box(TraceEvent::VmWindow { instrs: 64, exit: VmExitKind::Halt })))
    });
    c.bench_function("trace_plane/serialize_1k_ring", |b| b.iter(|| black_box(tp.serialize())));
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Metrics-plane microbenches: per-emit cost, plus the zero-allocation
//! proof the design demands — once tags are interned, the hot-path
//! operations (counter increments, component charges, invocation
//! brackets) must never touch the heap.

use std::rc::Rc;

use criterion::alloc::CountingAlloc;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vino_sim::metrics::{Component, Counter, MetricsPlane};
use vino_sim::{Cycles, VirtualClock};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn bench(c: &mut Criterion) {
    let clock = VirtualClock::new();
    let mp = MetricsPlane::with_graft_capacity(Rc::clone(&clock), 8);

    // Interning is the only allocating operation, and it happens once
    // per graft name at install time — do it before the proof window.
    let tags = [mp.tag("ra"), mp.tag("evict"), mp.tag("sched"), mp.tag("crypt")];

    // Warm every slot so the steady state under proof is the loaded
    // plane, not first-touch.
    for &t in &tags {
        mp.mark_install(t);
        mp.begin_invocation(t);
        mp.charge(Component::GraftFn, Cycles(100));
        mp.end_invocation(true);
    }

    // The proof: 100k hot-path emits mixing every operation the
    // subsystems perform per invocation — zero allocations.
    let before = ALLOC.allocations();
    for i in 0..100_000u64 {
        clock.charge_us(1);
        let tag = tags[(i % 4) as usize];
        mp.inc(Counter::TxnBegins);
        mp.add(Counter::VmInstrs, i % 512);
        mp.begin_invocation(tag);
        mp.charge(Component::TxnBegin, Cycles(4320));
        mp.charge(Component::GraftFn, Cycles(i % 997));
        mp.charge(Component::TxnCommit, Cycles(3600));
        mp.observe_rm_peak(0, i % 4096);
        mp.observe_undo_depth(i % 7);
        mp.end_invocation(i % 5 != 0);
    }
    let delta = ALLOC.allocations() - before;
    assert_eq!(delta, 0, "metrics emit hit the heap {delta} times in 100k emits");
    println!("metrics_plane/allocs_per_100k_emits      {delta:>12}");

    c.bench_function("metrics_plane/inc", |b| b.iter(|| mp.inc(black_box(Counter::TxnBegins))));
    c.bench_function("metrics_plane/charge", |b| {
        b.iter(|| mp.charge(black_box(Component::GraftFn), black_box(Cycles(100))))
    });
    c.bench_function("metrics_plane/invocation_bracket", |b| {
        b.iter(|| {
            mp.begin_invocation(black_box(tags[0]));
            mp.charge(Component::GraftFn, Cycles(100));
            mp.end_invocation(true);
        })
    });
    c.bench_function("metrics_plane/snapshot", |b| b.iter(|| black_box(mp.snapshot())));
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for Table 5 (scheduling graft overhead).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", vino_bench::table5::run(50).render());
    c.bench_function("table5/six_paths", |b| {
        b.iter(|| std::hint::black_box(vino_bench::table5::run(3)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

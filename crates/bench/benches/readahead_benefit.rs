//! Criterion bench for the cost-benefit figures (E3/E4): the read-ahead
//! crossover sweep and the eviction break-even ratio.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", vino_bench::benefit::readahead_crossover().render());
    println!("{}", vino_bench::benefit::eviction_break_even(20).render());
    c.bench_function("benefit/eviction_break_even", |b| {
        b.iter(|| std::hint::black_box(vino_bench::benefit::eviction_break_even(2)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

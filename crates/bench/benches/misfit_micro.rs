//! Criterion bench for the §3.3 MiSFIT micro-overheads (E2), plus raw
//! simulator throughput of the instrumentation pass and the verifier.

use criterion::{criterion_group, criterion_main, Criterion};
use vino_misfit::{instrument, MisfitTool, SigningKey};
use vino_vm::isa::{AluOp, Instr, Program, Reg};

fn big_program(n: usize) -> Program {
    let instrs: Vec<Instr> = (0..n)
        .map(|i| match i % 4 {
            0 => Instr::LoadW { d: Reg(1), addr: Reg(2), off: 0 },
            1 => Instr::Alu { op: AluOp::Xor, d: Reg(1), a: Reg(1), b: Reg(3) },
            2 => Instr::StoreW { s: Reg(1), addr: Reg(2), off: 4 },
            _ => Instr::AluI { op: AluOp::Add, d: Reg(2), a: Reg(2), imm: 8 },
        })
        .chain(std::iter::once(Instr::Halt { result: Reg(0) }))
        .collect();
    Program::new("big", instrs)
}

fn bench(c: &mut Criterion) {
    println!("{}", vino_bench::misfit_micro::run().render());
    let prog = big_program(4096);
    c.bench_function("misfit/instrument_4k_instrs", |b| {
        b.iter(|| std::hint::black_box(instrument(&prog).unwrap()))
    });
    let tool = MisfitTool::new(SigningKey::from_passphrase("bench"));
    let (image, _) = tool.process(&prog).unwrap();
    c.bench_function("misfit/verify_and_decode", |b| {
        b.iter(|| std::hint::black_box(tool.verify_and_decode(&image).unwrap()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

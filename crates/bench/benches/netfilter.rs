//! Bench for the packet-filter path census and batched-dispatch sweep.
//!
//! Prints the reproduced table once (six protection levels plus the
//! per-packet amortization rows), then wall-clock-benchmarks the
//! measurement harness itself.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", vino_bench::netfilter::run(50).render());
    c.bench_function("netfilter/census", |b| {
        b.iter(|| std::hint::black_box(vino_bench::netfilter::run(3)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

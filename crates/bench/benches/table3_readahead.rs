//! Criterion bench for Table 3 (read-ahead graft overhead).
//!
//! Prints the reproduced table once, then wall-clock-benchmarks the
//! six-path measurement harness itself.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", vino_bench::table3::run(50).render());
    c.bench_function("table3/six_paths", |b| {
        b.iter(|| std::hint::black_box(vino_bench::table3::run(3)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Simulator-performance benches: GraftVM interpreter throughput and
//! the full graft-invocation wrapper (host wall-clock, not model time).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use vino_bench::world::{build, Variant};
use vino_core::engine::InvokeOutcome;

fn bench(c: &mut Criterion) {
    // Interpreter throughput on the encryption loop (8 KB payload).
    let mut group = c.benchmark_group("graftvm");
    group.throughput(Throughput::Bytes(8192));
    group.bench_function("xor_8k_safe", |b| {
        let mut w = build(vino_bench::table6::ENCRYPT_GRAFT_SRC, 32 * 1024, Variant::Safe, 0);
        let base = w.graft.mem_ref().seg_base();
        b.iter(|| {
            let out = w.graft.invoke([base + 4096, base + 12288, 8192, 0]);
            assert!(matches!(out, InvokeOutcome::Ok { .. }));
        })
    });
    group.finish();
    c.bench_function("wrapper/null_invoke", |b| {
        let mut w = build("halt r0", 1024, Variant::Safe, 0);
        b.iter(|| {
            let out = w.graft.invoke([0; 4]);
            assert!(matches!(out, InvokeOutcome::Ok { .. }));
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! The deterministic packet-plane load generator: one million packets
//! through a mixed filter population (one well-behaved drop-odd filter,
//! one hostile spinner that dies in its first batch, bulk default
//! traffic), reporting virtual-time per-packet cost for the whole RX
//! path — admission, batched filter dispatch, verdict application and
//! delivery — at several batch sizes.
//!
//! The virtual clock is the cycle counter, so the printed figures are
//! deterministic; the criterion loop at the end wall-clock-benchmarks
//! the generator itself on a smaller storm.

use std::rc::Rc;

use criterion::{criterion_group, criterion_main, Criterion};
use vino_core::{InstallOpts, Kernel};
use vino_dev::Port;
use vino_net::{Packet, PacketPlane};
use vino_rm::{Limits, ResourceKind};
use vino_sim::SplitMix64;

const SEED: u64 = 3_405_691_582;

/// Runs `n` packets through the plane at the given filter batch size,
/// returning (virtual us total, delivered, dropped-by-verdict).
fn storm(n: u64, batch: usize) -> (f64, u64, u64) {
    let kernel = Kernel::boot();
    let app = kernel.create_app(Limits::of(&[
        (ResourceKind::KernelHeap, 1 << 20),
        (ResourceKind::Memory, 1 << 24),
    ]));
    let thread = kernel.spawn_thread("storm-bench");
    let plane = PacketPlane::new(Rc::clone(&kernel));
    plane.set_batch(batch);

    let well = kernel
        .compile_graft(
            "well-drop-odd",
            "andi r5, r3, 1\nbne r5, r0, t\nhalt r0\nt: const r5, 1\nhalt r5",
        )
        .unwrap();
    plane.install_filter(Port(10), &well, app, thread, &InstallOpts::default()).unwrap();
    let spin = kernel.compile_graft("spin-filter", "spin: jmp spin").unwrap();
    let g = plane.install_filter(Port(20), &spin, app, thread, &InstallOpts::default()).unwrap();
    g.borrow_mut().max_slices = 4;
    for p in 0..8u16 {
        plane.open_port(Port(60 + p), 1024);
    }

    let mut rng = SplitMix64::new(SEED);
    let t0 = kernel.clock.now();
    let mut delivered = 0u64;
    let mut dropped = 0u64;
    for i in 0..n {
        let r = rng.below(100);
        let port = match r {
            0..=69 => Port(60 + rng.below(8) as u16),
            70..=95 => Port(10),
            _ => Port(20),
        };
        let src = rng.next_u64() as u32;
        plane.rx(Packet::udp(src, 1, port, vec![0xA5; 16]));
        if i % 512 == 511 {
            let s = plane.pump();
            delivered += s.accepted;
            dropped += s.dropped;
            for p in plane.open_ports() {
                plane.drain_delivered(p);
            }
        }
    }
    let s = plane.pump();
    delivered += s.accepted;
    dropped += s.dropped;
    let us = kernel.clock.since(t0).as_us();
    (us, delivered, dropped)
}

fn bench(c: &mut Criterion) {
    let n = 1_000_000u64;
    println!("packet-storm load generator: {n} packets, seed {SEED}");
    println!(
        "{:<10} {:>14} {:>12} {:>12} {:>14}",
        "batch", "virtual us", "delivered", "dropped", "us/packet"
    );
    for batch in [1usize, 8, 32, 128] {
        let (us, delivered, dropped) = storm(n, batch);
        println!(
            "{:<10} {:>14.0} {:>12} {:>12} {:>14.3}",
            batch,
            us,
            delivered,
            dropped,
            us / n as f64
        );
    }
    c.bench_function("packet_storm/10k", |b| b.iter(|| std::hint::black_box(storm(10_000, 32))));
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for the Figures 4/5 lock-manager ablation (F45).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", vino_bench::lockfig::run(50).render());
    c.bench_function("fig45/ablation", |b| {
        b.iter(|| std::hint::black_box(vino_bench::lockfig::run(3)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

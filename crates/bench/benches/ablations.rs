//! Criterion bench for the design-choice ablations (A1/A2).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", vino_bench::ablation::eviction_policy().render());
    println!("{}", vino_bench::ablation::lock_timeout_sweep().render());
    c.bench_function("ablation/timeout_sweep", |b| {
        b.iter(|| std::hint::black_box(vino_bench::ablation::waiter_stall_us(10_000)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Watch-plane microbenches: per-observation cost, plus the
//! zero-allocation proof the design demands — once principal slots are
//! warmed (the analogue of metrics-tag interning), the hot-path
//! operations (observations, window rotation, alert edges into the
//! preallocated ring) must never touch the heap.

use criterion::alloc::CountingAlloc;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vino_sim::watch::WatchPlane;
use vino_sim::{Cycles, VirtualClock};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn bench(c: &mut Criterion) {
    let clock = VirtualClock::new();
    let wp = WatchPlane::new(std::rc::Rc::clone(&clock));

    // Slot creation is the only allocating operation on the principal
    // path, and it happens once per principal at install time — do it
    // before the proof window, exactly as the kernel's install hook
    // (`touch_principal`) does.
    let principals = [1u64, 2, 3, 4];
    for &p in &principals {
        wp.touch_principal(p);
    }

    // Warm every signal once so the steady state under proof is the
    // loaded plane, not first-touch.
    for &p in &principals {
        wp.observe_install(p);
        wp.observe_invoke(p, Cycles(100));
        wp.observe_abort(p);
        wp.observe_quarantine(p);
    }
    wp.observe_shed();
    wp.observe_journal(1, 64);
    wp.observe_lock_timeout();
    wp.poll();

    // The proof: 100k hot-path observations mixing every signal the
    // subsystems report, dense enough that alerts genuinely fire and
    // resolve (edges land in the preallocated ring) — zero allocations.
    let before = ALLOC.allocations();
    for i in 0..100_000u64 {
        clock.charge_us(1);
        let p = principals[(i % 4) as usize];
        wp.observe_invoke(p, Cycles(i % 997));
        if i % 3 == 0 {
            wp.observe_abort(p);
        }
        if i % 7 == 0 {
            wp.observe_shed();
        }
        if i % 11 == 0 {
            wp.observe_journal(i % 64, 64);
        }
        if i % 13 == 0 {
            wp.observe_lock_timeout();
        }
        if i % 16 == 0 {
            wp.poll();
        }
    }
    let delta = ALLOC.allocations() - before;
    assert_eq!(delta, 0, "watch observation hit the heap {delta} times in 100k observations");
    assert!(!wp.is_empty(), "the storm above must actually fire alerts");
    println!("watch_plane/allocs_per_100k_observes     {delta:>12}");

    c.bench_function("watch_plane/observe_invoke", |b| {
        b.iter(|| wp.observe_invoke(black_box(1), black_box(Cycles(100))))
    });
    c.bench_function("watch_plane/observe_abort", |b| b.iter(|| wp.observe_abort(black_box(1))));
    c.bench_function("watch_plane/observe_shed", |b| b.iter(|| wp.observe_shed()));
    c.bench_function("watch_plane/poll", |b| b.iter(|| wp.poll()));
    c.bench_function("watch_plane/serialize", |b| b.iter(|| black_box(wp.serialize())));
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Profile-plane microbenches: per-retired-instruction billing cost,
//! plus the zero-allocation proof — once a graft's program is
//! registered, the hot-path operations (per-PC billing, call-graph
//! enter/exit on already-seen edges, invocation brackets, span marks)
//! must never touch the heap.

use std::rc::Rc;

use criterion::alloc::CountingAlloc;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vino_sim::metrics::Component;
use vino_sim::profile::{ProfilePlane, SpanKind};
use vino_sim::{Cycles, VirtualClock};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn bench(c: &mut Criterion) {
    let clock = VirtualClock::new();
    let pp = ProfilePlane::with_capacity(Rc::clone(&clock), 8, 1 << 14);

    // Interning and program registration are the only allocating
    // operations, and they happen once per graft at install time — do
    // them before the proof window. One warm-up pass also materialises
    // every call-tree edge the proof loop will walk.
    let tags = [pp.tag("ra"), pp.tag("evict"), pp.tag("sched"), pp.tag("crypt")];
    for &t in &tags {
        pp.register_program(t, 512);
        pp.begin_invocation(t);
        pp.record_pc(t, 0, Component::GraftFn, Cycles(1));
        pp.enter_fn(t, 40);
        pp.record_pc(t, 40, Component::GraftFn, Cycles(35));
        pp.exit_fn(t);
        pp.end_invocation(true);
    }

    // The proof: 100k retired instructions (mixed with the bracket,
    // call-graph and span traffic one invocation generates) — zero
    // allocations.
    let before = ALLOC.allocations();
    for i in 0..1_000u64 {
        let tag = tags[(i % 4) as usize];
        pp.begin_invocation(tag);
        pp.charge(Component::TxnBegin, Cycles(4320));
        pp.mark(SpanKind::TxnBegin, Cycles(4320));
        for pc in 0..100u32 {
            clock.charge(Cycles(1));
            let comp = if pc % 7 == 0 { Component::Sfi } else { Component::GraftFn };
            pp.record_pc(tag, pc as usize, comp, Cycles(1 + (pc as u64 % 4)));
        }
        pp.enter_fn(tag, 40);
        pp.record_pc(tag, 40, Component::GraftFn, Cycles(35));
        pp.exit_fn(tag);
        pp.charge(Component::TxnCommit, Cycles(3600));
        pp.mark(SpanKind::TxnCommit, Cycles(3600));
        pp.end_invocation(i % 5 != 0);
    }
    let delta = ALLOC.allocations() - before;
    assert_eq!(delta, 0, "profile billing hit the heap {delta} times in 100k instructions");
    println!("profile_plane/allocs_per_100k_instrs     {delta:>12}");

    c.bench_function("profile_plane/record_pc", |b| {
        b.iter(|| {
            pp.record_pc(
                black_box(tags[0]),
                black_box(17),
                Component::GraftFn,
                black_box(Cycles(2)),
            )
        })
    });
    c.bench_function("profile_plane/enter_exit_fn", |b| {
        b.iter(|| {
            pp.enter_fn(tags[0], black_box(40));
            pp.exit_fn(tags[0]);
        })
    });
    c.bench_function("profile_plane/invocation_bracket", |b| {
        b.iter(|| {
            pp.begin_invocation(black_box(tags[0]));
            pp.record_pc(tags[0], 1, Component::GraftFn, Cycles(1));
            pp.end_invocation(true);
        })
    });
    c.bench_function("profile_plane/folded", |b| b.iter(|| black_box(pp.folded())));
}

criterion_group!(benches, bench);
criterion_main!(benches);

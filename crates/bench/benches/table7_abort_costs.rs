//! Criterion bench for Table 7 (graft abort costs).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", vino_bench::table7::run(50).render());
    c.bench_function("table7/abort_pairs", |b| {
        b.iter(|| std::hint::black_box(vino_bench::table7::pairs(3)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

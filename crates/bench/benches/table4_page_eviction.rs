//! Criterion bench for Table 4 (page-eviction graft overhead).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", vino_bench::table4::run(50).render());
    c.bench_function("table4/six_paths", |b| {
        b.iter(|| std::hint::black_box(vino_bench::table4::run(3)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

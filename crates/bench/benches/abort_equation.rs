//! Criterion bench for the §4.5 abort-cost equation sweep (E1).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", vino_bench::equation::run().render());
    c.bench_function("equation/fit", |b| {
        b.iter(|| std::hint::black_box(vino_bench::equation::fit()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

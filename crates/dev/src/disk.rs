//! The simulated disk.
//!
//! A latency model of the paper's Fujitsu M2694ESA: seeks cost time
//! proportional to head travel (up to the 9 ms full-stroke average
//! anchor), rotation at 5400 RPM adds up to one revolution of delay, and
//! each 4 KB block transfers at the sustained media rate. Sequential
//! reads that hit the current head position skip the seek, which is what
//! makes read-ahead profitable (§4.1).
//!
//! Block contents are stored in memory; the disk is both a latency model
//! and a real (volatile) block store the file system is built on.

use std::rc::Rc;

use vino_sim::costs;
use vino_sim::fault::{FaultPlane, FaultSite};
use vino_sim::metrics::{Counter, MetricsPlane};
use vino_sim::{Cycles, SplitMix64, VirtualClock};

/// A logical block address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockAddr(pub u64);

/// Geometry and latency parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskGeometry {
    /// Total number of 4 KB blocks.
    pub blocks: u64,
    /// Blocks per track, for rotational-position modelling.
    pub blocks_per_track: u64,
    /// Full-stroke seek cost; average seek is roughly half of this.
    pub full_seek: Cycles,
    /// One full rotation (5400 RPM ⇒ ~11.1 ms).
    pub rotation: Cycles,
    /// Transfer time for one 4 KB block.
    pub transfer: Cycles,
}

impl Default for DiskGeometry {
    fn default() -> DiskGeometry {
        DiskGeometry {
            // 1080 MB formatted / 4 KB blocks ≈ 270k blocks; scaled down
            // to keep simulations snappy while preserving latencies.
            blocks: 65_536,
            blocks_per_track: 64,
            // Average seek 9 ms ⇒ full stroke ≈ 18 ms (avg ≈ 1/2 full
            // stroke under uniform random traffic, to first order).
            full_seek: Cycles(costs::DISK_AVG_SEEK.get() * 2),
            rotation: Cycles(costs::DISK_HALF_ROTATION.get() * 2),
            transfer: costs::DISK_TRANSFER_4K,
        }
    }
}

/// Operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Blocks read.
    pub reads: u64,
    /// Blocks written.
    pub writes: u64,
    /// Reads that required a head seek.
    pub seeks: u64,
    /// Reads satisfied at the current head position (sequential).
    pub sequential_hits: u64,
    /// Injected transient media errors (each one costs a full retry).
    pub io_errors: u64,
    /// Injected head stalls (each one costs the plane's stall latency).
    pub stalls: u64,
    /// Injected torn writes: the block persisted only as a prefix of
    /// the data handed to the controller.
    pub torn_writes: u64,
    /// Total cycles spent in the mechanism.
    pub busy: Cycles,
}

/// The persistent face of a [`Disk`]: every block that survives a power
/// cut, plus the geometry they were written under. Snapshot one with
/// [`Disk::snapshot`] at the instant of a simulated crash and hand it to
/// [`Disk::from_image`] to boot a fresh kernel over the surviving bytes.
/// Volatile state — head position, stats, fault wiring — is *not* part
/// of the image, exactly as it would not survive real power loss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskImage {
    geometry: DiskGeometry,
    blocks: Vec<Option<Box<[u8; 4096]>>>,
}

/// Why [`Disk::from_image`] refused an image: its block vector
/// disagrees with the geometry it claims to have been written under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskImageError {
    /// The image holds fewer block slots than its geometry declares.
    Truncated {
        /// Blocks the geometry declares.
        expected: u64,
        /// Block slots actually present.
        got: u64,
    },
    /// The image holds more block slots than its geometry declares.
    Oversized {
        /// Blocks the geometry declares.
        expected: u64,
        /// Block slots actually present.
        got: u64,
    },
}

impl std::fmt::Display for DiskImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskImageError::Truncated { expected, got } => {
                write!(f, "truncated disk image: geometry declares {expected} blocks, got {got}")
            }
            DiskImageError::Oversized { expected, got } => {
                write!(f, "oversized disk image: geometry declares {expected} blocks, got {got}")
            }
        }
    }
}

impl std::error::Error for DiskImageError {}

impl DiskImage {
    /// The geometry the image was written under.
    pub fn geometry(&self) -> DiskGeometry {
        self.geometry
    }

    /// Harness hook: forges an image whose block vector disagrees with
    /// its geometry (added slots read as zeros), for exercising
    /// [`Disk::from_image`] validation. A well-formed image can only
    /// come from [`Disk::snapshot`]; this is how tests make a
    /// malformed one.
    pub fn with_forged_block_count(mut self, blocks: u64) -> DiskImage {
        self.blocks.resize_with(blocks as usize, || None);
        self
    }

    /// The surviving contents of block `addr` (zeros if never written),
    /// for post-crash forensics in tests.
    pub fn block(&self, addr: BlockAddr) -> [u8; 4096] {
        match self.blocks.get(addr.0 as usize) {
            Some(Some(b)) => **b,
            _ => [0; 4096],
        }
    }

    /// Addresses of blocks the drive has ever materialised, in address
    /// order. Everything else reads as zeros, so comparing two images
    /// only needs the union of their written sets — the replication
    /// plane's convergence checks walk this instead of the full
    /// geometry.
    pub fn written(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.blocks.iter().enumerate().filter_map(|(i, b)| b.as_ref().map(|_| BlockAddr(i as u64)))
    }
}

/// The simulated drive.
#[derive(Debug)]
pub struct Disk {
    geometry: DiskGeometry,
    clock: Rc<VirtualClock>,
    blocks: Vec<Option<Box<[u8; 4096]>>>,
    head: u64,
    rng: SplitMix64,
    stats: DiskStats,
    fault: Option<Rc<FaultPlane>>,
    metrics: Option<Rc<MetricsPlane>>,
}

impl Disk {
    /// Creates a disk with the default (paper-calibrated) geometry.
    pub fn new(clock: Rc<VirtualClock>) -> Disk {
        Disk::with_geometry(clock, DiskGeometry::default())
    }

    /// Creates a disk with explicit geometry.
    pub fn with_geometry(clock: Rc<VirtualClock>, geometry: DiskGeometry) -> Disk {
        Disk {
            blocks: (0..geometry.blocks).map(|_| None).collect(),
            geometry,
            clock,
            head: 0,
            rng: SplitMix64::new(0x5EED_D15C),
            stats: DiskStats::default(),
            fault: None,
            metrics: None,
        }
    }

    /// Reconstructs a drive over the persistent blocks of `image`, as a
    /// machine powering back up over the platters a crash left behind.
    /// Mechanical state starts fresh (head at 0, zeroed stats, the same
    /// fixed rotational-phase seed as [`Disk::new`]), so a same-seed
    /// remount replays byte-identically. An image whose block vector
    /// disagrees with its declared geometry is refused with a typed
    /// [`DiskImageError`] rather than booting a drive that would panic
    /// on its first out-of-range access.
    pub fn from_image(clock: Rc<VirtualClock>, image: DiskImage) -> Result<Disk, DiskImageError> {
        let expected = image.geometry.blocks;
        let got = image.blocks.len() as u64;
        if got < expected {
            return Err(DiskImageError::Truncated { expected, got });
        }
        if got > expected {
            return Err(DiskImageError::Oversized { expected, got });
        }
        let mut d = Disk::with_geometry(clock, image.geometry);
        d.blocks = image.blocks;
        Ok(d)
    }

    /// Captures the persistent face of the drive — what survives an
    /// immediate power cut. See [`DiskImage`].
    pub fn snapshot(&self) -> DiskImage {
        DiskImage { geometry: self.geometry, blocks: self.blocks.clone() }
    }

    /// Resets the drive's volatile mechanical state — head parked at 0,
    /// the rotational-phase stream reseeded with the fixed
    /// [`Disk::new`] seed — without touching the platters or stats.
    /// Checkpoints call this on both the capture and restore sides so a
    /// resumed replay sees the same mechanics as [`Disk::from_image`]
    /// gives a fresh remount.
    pub fn reset_mechanism(&mut self) {
        self.head = 0;
        self.rng = SplitMix64::new(0x5EED_D15C);
    }

    /// Attaches a fault plane. [`FaultSite::DiskRead`] and
    /// [`FaultSite::DiskWrite`] model transient media errors the driver
    /// retries — the access is re-done at full mechanical cost, so data
    /// still arrives but the caller pays twice. [`FaultSite::DiskStall`]
    /// adds the plane's stall latency on top of any access.
    pub fn set_fault_plane(&mut self, plane: Rc<FaultPlane>) {
        self.fault = Some(plane);
    }

    /// Attaches a metrics plane: every operation counted in
    /// [`DiskStats`] also ticks its `vino_disk_*` counter, so the
    /// device shows up in the exposition and health snapshot.
    pub fn set_metrics_plane(&mut self, plane: Rc<MetricsPlane>) {
        self.metrics = Some(plane);
    }

    fn metric(&self, c: Counter) {
        if let Some(m) = &self.metrics {
            m.inc(c);
        }
    }

    /// The geometry in use.
    pub fn geometry(&self) -> DiskGeometry {
        self.geometry
    }

    /// Operation counters.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Number of addressable blocks.
    pub fn block_count(&self) -> u64 {
        self.geometry.blocks
    }

    /// Reads block `addr`, charging the mechanical latency to the clock.
    /// Unwritten blocks read as zeros.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is beyond the device (file-system bug, not graft
    /// misbehaviour — grafts cannot address the disk directly).
    pub fn read(&mut self, addr: BlockAddr) -> [u8; 4096] {
        let (data, cost) = self.read_with_cost(addr);
        self.clock.charge(cost);
        data
    }

    /// Reads block `addr` and returns its mechanical cost *without*
    /// charging the clock. Used by the asynchronous prefetch path, where
    /// the I/O overlaps computation: the file system accounts the cost
    /// on a separate disk-busy timeline instead of the caller's.
    pub fn read_with_cost(&mut self, addr: BlockAddr) -> ([u8; 4096], Cycles) {
        let mut cost = self.access_cost(addr);
        cost += self.fault_overhead(FaultSite::DiskRead, cost);
        self.stats.reads += 1;
        self.metric(Counter::DiskReads);
        self.stats.busy += cost;
        let data = match &self.blocks[addr.0 as usize] {
            Some(b) => **b,
            None => [0; 4096],
        };
        (data, cost)
    }

    /// Writes block `addr`, charging mechanical latency. If an armed
    /// [`FaultSite::DiskTornWrite`] fires, only a prefix of the block
    /// reaches the platter (length drawn deterministically from the
    /// fault plane) — the caller is not told, which is the point.
    pub fn write(&mut self, addr: BlockAddr, data: &[u8; 4096]) {
        let mut cost = self.access_cost(addr);
        cost += self.fault_overhead(FaultSite::DiskWrite, cost);
        self.clock.charge(cost);
        self.stats.writes += 1;
        self.metric(Counter::DiskWrites);
        self.stats.busy += cost;
        let torn = match &self.fault {
            Some(plane) if plane.fire(FaultSite::DiskTornWrite) => Some(plane.torn_prefix()),
            _ => None,
        };
        match torn {
            Some(prefix) => self.persist_prefix(addr, data, prefix),
            None => self.blocks[addr.0 as usize] = Some(Box::new(*data)),
        }
    }

    /// Writes block `addr` but persists only its first `prefix` bytes,
    /// leaving the rest of the block as it was — the torn state an
    /// in-flight write leaves when power dies mid-transfer. Used by the
    /// crash-injection path; normal clients never call this.
    pub fn write_torn(&mut self, addr: BlockAddr, data: &[u8; 4096], prefix: usize) {
        let cost = self.access_cost(addr);
        self.clock.charge(cost);
        self.stats.writes += 1;
        self.metric(Counter::DiskWrites);
        self.stats.busy += cost;
        self.persist_prefix(addr, data, prefix);
    }

    fn persist_prefix(&mut self, addr: BlockAddr, data: &[u8; 4096], prefix: usize) {
        let prefix = prefix.min(4096);
        let mut block = match &self.blocks[addr.0 as usize] {
            Some(b) => **b,
            None => [0; 4096],
        };
        block[..prefix].copy_from_slice(&data[..prefix]);
        self.stats.torn_writes += 1;
        self.metric(Counter::DiskTornWrites);
        self.blocks[addr.0 as usize] = Some(Box::new(block));
    }

    /// The latency the next access to `addr` would incur, without
    /// performing it (used by the prefetch scheduler).
    pub fn peek_cost(&mut self, addr: BlockAddr) -> Cycles {
        let head = self.head;
        self.cost_from(head, addr)
    }

    /// Extra latency injected faults add to an access whose clean
    /// mechanical cost is `base`. Media errors cost one full retry;
    /// stalls cost the plane's configured stall latency.
    fn fault_overhead(&mut self, site: FaultSite, base: Cycles) -> Cycles {
        let Some(plane) = &self.fault else {
            return Cycles(0);
        };
        let mut extra = Cycles(0);
        if plane.fire(site) {
            self.stats.io_errors += 1;
            extra += base;
            self.metric(Counter::DiskIoErrors);
        }
        if plane.fire(FaultSite::DiskStall) {
            self.stats.stalls += 1;
            extra += plane.stall();
            self.metric(Counter::DiskStalls);
        }
        extra
    }

    fn access_cost(&mut self, addr: BlockAddr) -> Cycles {
        assert!(addr.0 < self.geometry.blocks, "block {addr:?} beyond device");
        let cost = self.cost_from(self.head, addr);
        if addr.0 == self.head {
            self.stats.sequential_hits += 1;
        } else {
            self.stats.seeks += 1;
            self.metric(Counter::DiskSeeks);
        }
        self.head = addr.0 + 1; // Head ends just past the block read.
        cost
    }

    fn cost_from(&mut self, head: u64, addr: BlockAddr) -> Cycles {
        let g = self.geometry;
        if addr.0 == head {
            // Sequential: media transfer only.
            return g.transfer;
        }
        let track_of = |b: u64| b / g.blocks_per_track;
        let distance = track_of(addr.0).abs_diff(track_of(head));
        let max_tracks = (g.blocks / g.blocks_per_track).max(1);
        // Seek: settle cost plus travel proportional to distance.
        let settle = g.full_seek.get() / 8;
        let travel = g.full_seek.get() * distance / max_tracks;
        // Rotational delay: uniformly distributed in [0, rotation).
        let rot = self.rng.below(g.rotation.get().max(1));
        Cycles(settle + travel + rot + g.transfer.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Disk {
        Disk::new(VirtualClock::new())
    }

    #[test]
    fn read_write_round_trip() {
        let mut d = disk();
        let mut data = [0u8; 4096];
        data[..4].copy_from_slice(b"VINO");
        d.write(BlockAddr(100), &data);
        let back = d.read(BlockAddr(100));
        assert_eq!(&back[..4], b"VINO");
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let mut d = disk();
        assert_eq!(d.read(BlockAddr(5)), [0u8; 4096]);
    }

    #[test]
    fn sequential_reads_skip_seek() {
        let mut d = disk();
        d.read(BlockAddr(10)); // Position the head.
        let clock = Rc::clone(&d.clock);
        let t0 = clock.now();
        d.read(BlockAddr(11));
        let seq_cost = clock.since(t0);
        assert_eq!(seq_cost, d.geometry().transfer, "sequential read is transfer-only");
        assert!(d.stats().sequential_hits >= 1);
    }

    #[test]
    fn random_reads_cost_milliseconds() {
        // The premise of the read-ahead analysis: a random 4KB read
        // costs on the order of 10-20ms (the paper's 18ms page fault).
        let mut d = disk();
        let clock = Rc::clone(&d.clock);
        let mut rng = SplitMix64::new(7);
        let n = 200;
        let t0 = clock.now();
        for _ in 0..n {
            d.read(BlockAddr(rng.below(d.block_count())));
        }
        let avg_ms = clock.since(t0).as_ms() / n as f64;
        assert!(
            (5.0..=30.0).contains(&avg_ms),
            "average random-read latency {avg_ms:.1}ms out of calibration"
        );
    }

    #[test]
    fn random_costs_dwarf_sequential() {
        let mut d = disk();
        let clock = Rc::clone(&d.clock);
        d.read(BlockAddr(0));
        let t0 = clock.now();
        for i in 1..=50 {
            d.read(BlockAddr(i));
        }
        let seq = clock.since(t0);
        let t1 = clock.now();
        let mut rng = SplitMix64::new(9);
        for _ in 0..50 {
            d.read(BlockAddr(rng.below(d.block_count())));
        }
        let rand = clock.since(t1);
        // Sequential is transfer-bound (~1.6 ms/block at the 1996 media
        // rate); random adds seek + rotation (~10 ms) on top.
        assert!(rand.get() > seq.get() * 5, "random ({rand}) must dwarf sequential ({seq})");
    }

    #[test]
    fn stats_count_operations() {
        let mut d = disk();
        d.write(BlockAddr(1), &[0; 4096]);
        d.read(BlockAddr(1));
        d.read(BlockAddr(2));
        let s = d.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 2);
        assert!(s.busy.get() > 0);
    }

    #[test]
    #[should_panic(expected = "beyond device")]
    fn out_of_range_block_panics() {
        let mut d = disk();
        let past_end = d.block_count();
        d.read(BlockAddr(past_end));
    }

    #[test]
    fn injected_read_error_doubles_cost_and_counts() {
        use vino_sim::fault::{FaultPlane, FaultSite};
        let mut d = disk();
        let clock = Rc::clone(&d.clock);
        d.read(BlockAddr(10)); // Position the head for sequential reads.
        let plane = FaultPlane::seeded(1);
        plane.arm(FaultSite::DiskRead, 1);
        d.set_fault_plane(plane);
        let t0 = clock.now();
        d.read(BlockAddr(11)); // Faulted: transfer + one retry.
        let faulted = clock.since(t0);
        let t1 = clock.now();
        d.read(BlockAddr(12)); // Clean sequential read.
        let clean = clock.since(t1);
        assert_eq!(faulted.get(), clean.get() * 2, "retry pays the access again");
        assert_eq!(d.stats().io_errors, 1);
        assert_eq!(&d.read(BlockAddr(11))[..4], &[0; 4], "data still served");
    }

    #[test]
    fn injected_stall_adds_configured_latency() {
        use vino_sim::fault::{FaultPlane, FaultSite};
        let mut d = disk();
        d.write(BlockAddr(5), &[1; 4096]);
        let plane = FaultPlane::seeded(2);
        plane.set_stall(Cycles::from_ms(7));
        plane.arm(FaultSite::DiskStall, 1);
        d.set_fault_plane(Rc::clone(&plane));
        d.read(BlockAddr(5)); // Seek back — stall fires on top.
        assert_eq!(d.stats().stalls, 1);
        assert!(d.stats().busy >= Cycles::from_ms(7), "stall latency accounted");
    }

    #[test]
    fn from_image_round_trips_a_well_formed_snapshot() {
        let mut d = disk();
        d.write(BlockAddr(7), &[0xAB; 4096]);
        let image = d.snapshot();
        let mut d2 = Disk::from_image(VirtualClock::new(), image).unwrap();
        assert_eq!(d2.read(BlockAddr(7)), [0xAB; 4096]);
    }

    #[test]
    fn from_image_refuses_truncated_and_oversized_images() {
        let d = disk();
        let blocks = d.block_count();
        let short = d.snapshot().with_forged_block_count(blocks - 1);
        assert_eq!(
            Disk::from_image(VirtualClock::new(), short).unwrap_err(),
            DiskImageError::Truncated { expected: blocks, got: blocks - 1 }
        );
        let long = d.snapshot().with_forged_block_count(blocks + 8);
        assert_eq!(
            Disk::from_image(VirtualClock::new(), long).unwrap_err(),
            DiskImageError::Oversized { expected: blocks, got: blocks + 8 }
        );
    }

    #[test]
    fn fault_schedule_is_seed_deterministic() {
        use vino_sim::fault::{FaultPlane, FaultSite};
        let run = |seed: u64| {
            let mut d = disk();
            let plane = FaultPlane::seeded(seed);
            plane.set_rate(FaultSite::DiskWrite, 1, 3);
            d.set_fault_plane(plane);
            for i in 0..200 {
                d.write(BlockAddr(i), &[0; 4096]);
            }
            d.stats().io_errors
        };
        assert_eq!(run(42), run(42), "same seed, same error schedule");
        assert!(run(42) > 30, "1-in-3 rate must actually inject");
    }
}

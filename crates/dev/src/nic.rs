//! The simulated network interface.
//!
//! §3.5: "When an event occurs in the kernel (e.g., a new connection is
//! established on the TCP port dedicated to HTTP, or a packet is
//! received on the UDP port for NFS), VINO spawns a worker thread and
//! begins a transaction." The NIC is the source of those events: tests
//! and benchmarks inject traffic, the kernel's event-graft dispatcher
//! drains it.

use std::collections::VecDeque;

/// A TCP or UDP port number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Port(pub u16);

/// A network event the kernel may dispatch to event grafts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetEvent {
    /// A new TCP connection was established on `port`; `conn_fd` is the
    /// kernel descriptor handed to the handler (Figure 2's HTTP graft
    /// receives exactly this).
    TcpConnect {
        /// Listening port.
        port: Port,
        /// Kernel descriptor for the new connection.
        conn_fd: u32,
    },
    /// A UDP datagram arrived on `port` (the NFS-server event).
    UdpPacket {
        /// Destination port.
        port: Port,
        /// Datagram payload.
        payload: Vec<u8>,
    },
}

impl NetEvent {
    /// The port this event concerns.
    pub fn port(&self) -> Port {
        match self {
            NetEvent::TcpConnect { port, .. } | NetEvent::UdpPacket { port, .. } => *port,
        }
    }
}

/// The simulated NIC: a FIFO of arrived events.
#[derive(Debug, Default)]
pub struct Nic {
    queue: VecDeque<NetEvent>,
    next_fd: u32,
    delivered: u64,
    dropped: u64,
    capacity: usize,
}

impl Nic {
    /// Creates a NIC with the default receive-queue capacity.
    pub fn new() -> Nic {
        Nic { capacity: 1024, next_fd: 1000, ..Nic::default() }
    }

    /// Injects a TCP connection-established event, returning the
    /// connection descriptor the handler will receive, or `None` when
    /// the receive queue overflowed (the event is dropped, as real NICs
    /// drop packets under overload).
    pub fn inject_tcp_connect(&mut self, port: Port) -> Option<u32> {
        if self.queue.len() >= self.capacity {
            self.dropped += 1;
            return None;
        }
        let fd = self.next_fd;
        self.next_fd += 1;
        self.queue.push_back(NetEvent::TcpConnect { port, conn_fd: fd });
        Some(fd)
    }

    /// Injects a UDP datagram. Returns false if dropped on overflow.
    pub fn inject_udp(&mut self, port: Port, payload: Vec<u8>) -> bool {
        if self.queue.len() >= self.capacity {
            self.dropped += 1;
            return false;
        }
        self.queue.push_back(NetEvent::UdpPacket { port, payload });
        true
    }

    /// Removes and returns the oldest pending event.
    pub fn poll(&mut self) -> Option<NetEvent> {
        let e = self.queue.pop_front();
        if e.is_some() {
            self.delivered += 1;
        }
        e
    }

    /// Pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Events handed to the kernel so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Events dropped due to queue overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_delivery() {
        let mut n = Nic::new();
        let fd1 = n.inject_tcp_connect(Port(80)).unwrap();
        n.inject_udp(Port(2049), vec![1, 2, 3]);
        let fd2 = n.inject_tcp_connect(Port(80)).unwrap();
        assert_ne!(fd1, fd2, "descriptors are unique");
        assert_eq!(n.pending(), 3);
        assert_eq!(n.poll(), Some(NetEvent::TcpConnect { port: Port(80), conn_fd: fd1 }));
        assert_eq!(
            n.poll(),
            Some(NetEvent::UdpPacket { port: Port(2049), payload: vec![1, 2, 3] })
        );
        assert_eq!(n.poll(), Some(NetEvent::TcpConnect { port: Port(80), conn_fd: fd2 }));
        assert_eq!(n.poll(), None);
        assert_eq!(n.delivered(), 3);
    }

    #[test]
    fn event_port_accessor() {
        let e = NetEvent::UdpPacket { port: Port(53), payload: vec![] };
        assert_eq!(e.port(), Port(53));
    }

    #[test]
    fn overflow_drops() {
        let mut n = Nic::new();
        let mut accepted = 0;
        for _ in 0..2000 {
            if n.inject_udp(Port(9), vec![]) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 1024);
        assert_eq!(n.dropped(), 2000 - 1024);
        assert_eq!(n.pending(), 1024);
    }
}

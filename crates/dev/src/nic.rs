//! The simulated network interface.
//!
//! §3.5: "When an event occurs in the kernel (e.g., a new connection is
//! established on the TCP port dedicated to HTTP, or a packet is
//! received on the UDP port for NFS), VINO spawns a worker thread and
//! begins a transaction." The NIC is the source of those events: tests
//! and benchmarks inject traffic, the kernel's event-graft dispatcher
//! drains it.
//!
//! Overload is observable: the device keeps global and per-port drop
//! tallies, and when a [`MetricsPlane`] is attached it mirrors
//! delivered/dropped into [`Counter::NicDelivered`] /
//! [`Counter::NicDropped`] so a health snapshot shows device-level loss
//! next to the packet plane's own shedding.

use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use vino_sim::metrics::{Counter, MetricsPlane};

/// A TCP or UDP port number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Port(pub u16);

/// The first connection descriptor a fresh NIC hands out. Descriptor
/// allocation wraps back here rather than overflowing.
pub const FIRST_CONN_FD: u32 = 1000;

/// A network event the kernel may dispatch to event grafts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetEvent {
    /// A new TCP connection was established on `port`; `conn_fd` is the
    /// kernel descriptor handed to the handler (Figure 2's HTTP graft
    /// receives exactly this).
    TcpConnect {
        /// Listening port.
        port: Port,
        /// Kernel descriptor for the new connection.
        conn_fd: u32,
    },
    /// A UDP datagram arrived on `port` (the NFS-server event).
    UdpPacket {
        /// Destination port.
        port: Port,
        /// Datagram payload.
        payload: Vec<u8>,
    },
}

impl NetEvent {
    /// The port this event concerns.
    pub fn port(&self) -> Port {
        match self {
            NetEvent::TcpConnect { port, .. } | NetEvent::UdpPacket { port, .. } => *port,
        }
    }
}

/// The simulated NIC: a FIFO of arrived events.
#[derive(Debug, Default)]
pub struct Nic {
    queue: VecDeque<NetEvent>,
    next_fd: u32,
    delivered: u64,
    dropped: u64,
    dropped_by_port: BTreeMap<Port, u64>,
    capacity: usize,
    metrics: Option<Rc<MetricsPlane>>,
}

impl Nic {
    /// Creates a NIC with the default receive-queue capacity.
    pub fn new() -> Nic {
        Nic { capacity: 1024, next_fd: FIRST_CONN_FD, ..Nic::default() }
    }

    /// Attaches the metrics plane; delivered/dropped events are mirrored
    /// into [`Counter::NicDelivered`] / [`Counter::NicDropped`] from now
    /// on.
    pub fn set_metrics_plane(&mut self, mp: Rc<MetricsPlane>) {
        self.metrics = Some(mp);
    }

    fn drop_event(&mut self, port: Port) {
        self.dropped += 1;
        *self.dropped_by_port.entry(port).or_insert(0) += 1;
        if let Some(mp) = &self.metrics {
            mp.inc(Counter::NicDropped);
            mp.observe_nic_port_drop(port.0);
        }
    }

    /// Injects a TCP connection-established event, returning the
    /// connection descriptor the handler will receive, or `None` when
    /// the receive queue overflowed (the event is dropped, as real NICs
    /// drop packets under overload).
    pub fn inject_tcp_connect(&mut self, port: Port) -> Option<u32> {
        if self.queue.len() >= self.capacity {
            self.drop_event(port);
            return None;
        }
        let fd = self.next_fd;
        // Descriptors are per-connection and transient; a long-lived
        // simulation must wrap, not overflow, and must never re-enter
        // the well-known low descriptor range.
        self.next_fd = self.next_fd.checked_add(1).unwrap_or(FIRST_CONN_FD);
        self.queue.push_back(NetEvent::TcpConnect { port, conn_fd: fd });
        Some(fd)
    }

    /// Injects a UDP datagram. Returns false if dropped on overflow.
    pub fn inject_udp(&mut self, port: Port, payload: Vec<u8>) -> bool {
        if self.queue.len() >= self.capacity {
            self.drop_event(port);
            return false;
        }
        self.queue.push_back(NetEvent::UdpPacket { port, payload });
        true
    }

    /// Removes and returns the oldest pending event.
    pub fn poll(&mut self) -> Option<NetEvent> {
        let e = self.queue.pop_front();
        if e.is_some() {
            self.delivered += 1;
            if let Some(mp) = &self.metrics {
                mp.inc(Counter::NicDelivered);
            }
        }
        e
    }

    /// Pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Events handed to the kernel so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Events dropped due to queue overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events dropped on `port` specifically.
    pub fn dropped_on(&self, port: Port) -> u64 {
        self.dropped_by_port.get(&port).copied().unwrap_or(0)
    }

    /// Per-port drop tallies, ordered by port.
    pub fn drops_by_port(&self) -> impl Iterator<Item = (Port, u64)> + '_ {
        self.dropped_by_port.iter().map(|(p, n)| (*p, *n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vino_sim::VirtualClock;

    #[test]
    fn fifo_delivery() {
        let mut n = Nic::new();
        let fd1 = n.inject_tcp_connect(Port(80)).unwrap();
        n.inject_udp(Port(2049), vec![1, 2, 3]);
        let fd2 = n.inject_tcp_connect(Port(80)).unwrap();
        assert_ne!(fd1, fd2, "descriptors are unique");
        assert_eq!(n.pending(), 3);
        assert_eq!(n.poll(), Some(NetEvent::TcpConnect { port: Port(80), conn_fd: fd1 }));
        assert_eq!(
            n.poll(),
            Some(NetEvent::UdpPacket { port: Port(2049), payload: vec![1, 2, 3] })
        );
        assert_eq!(n.poll(), Some(NetEvent::TcpConnect { port: Port(80), conn_fd: fd2 }));
        assert_eq!(n.poll(), None);
        assert_eq!(n.delivered(), 3);
    }

    #[test]
    fn event_port_accessor() {
        let e = NetEvent::UdpPacket { port: Port(53), payload: vec![] };
        assert_eq!(e.port(), Port(53));
    }

    #[test]
    fn overflow_drops() {
        let mut n = Nic::new();
        let mut accepted = 0;
        for _ in 0..2000 {
            if n.inject_udp(Port(9), vec![]) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 1024);
        assert_eq!(n.dropped(), 2000 - 1024);
        assert_eq!(n.pending(), 1024);
    }

    #[test]
    fn drops_are_accounted_per_port() {
        let mut n = Nic::new();
        for _ in 0..1024 {
            assert!(n.inject_udp(Port(9), vec![]));
        }
        // Queue full: everything below drops, attributed to its port.
        n.inject_udp(Port(9), vec![]);
        n.inject_udp(Port(9), vec![]);
        n.inject_udp(Port(53), vec![]);
        assert!(n.inject_tcp_connect(Port(80)).is_none());
        assert_eq!(n.dropped(), 4);
        assert_eq!(n.dropped_on(Port(9)), 2);
        assert_eq!(n.dropped_on(Port(53)), 1);
        assert_eq!(n.dropped_on(Port(80)), 1);
        assert_eq!(n.dropped_on(Port(7)), 0);
        let per_port: Vec<(Port, u64)> = n.drops_by_port().collect();
        assert_eq!(per_port, [(Port(9), 2), (Port(53), 1), (Port(80), 1)]);
    }

    #[test]
    fn conn_fd_allocation_wraps_instead_of_overflowing() {
        let mut n = Nic::new();
        n.next_fd = u32::MAX;
        let last = n.inject_tcp_connect(Port(80)).unwrap();
        assert_eq!(last, u32::MAX);
        let wrapped = n.inject_tcp_connect(Port(80)).unwrap();
        assert_eq!(wrapped, FIRST_CONN_FD, "wraps to the base, not to 0");
    }

    #[test]
    fn metrics_plane_sees_delivered_and_dropped() {
        let mp = MetricsPlane::new(VirtualClock::new());
        let mut n = Nic::new();
        n.set_metrics_plane(Rc::clone(&mp));
        for _ in 0..1025 {
            n.inject_udp(Port(9), vec![]);
        }
        assert!(n.poll().is_some());
        assert_eq!(mp.get(Counter::NicDelivered), 1);
        assert_eq!(mp.get(Counter::NicDropped), 1);
    }
}

//! Simulated devices: the disk and the network interface.
//!
//! The paper's test platform used "a single 5400 RPM Fujitsu M2694ESA
//! disk with a SCSI interface, a formatted capacity of 1080MB, an
//! average seek time of 9.5 \[ms\], and a 64KB buffer" (§4). The [`disk`]
//! module models that drive's latency: seek distance-dependent head
//! movement, rotational delay at 5400 RPM, and per-block transfer time —
//! enough to reproduce the ~18 ms page-fault cost the eviction analysis
//! relies on (§4.2.2) and the read-ahead win of §4.1.
//!
//! The [`nic`] module is a minimal network event source: TCP connection
//! establishment and UDP packet arrival, which are exactly the kernel
//! events the paper's event-graft examples (HTTP and NFS servers, §3.5)
//! handle.

pub mod disk;
pub mod nic;

pub use disk::{BlockAddr, Disk, DiskGeometry, DiskImage, DiskImageError, DiskStats};
pub use nic::{NetEvent, Nic, Port};

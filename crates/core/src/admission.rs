//! Metrics-driven admission control for graft installs.
//!
//! The reliability manager (quarantine, blame ceilings) is the paper's
//! *reactive* discipline: it punishes a graft name after its aborts.
//! The admission controller is the proactive half the multi-tenant
//! soak needs: it consults the watch plane's *firing alerts* — the
//! sliding-window SLO verdicts of `vino_sim::watch` — and refuses new
//! installs from a principal the windows currently blame, with an
//! exponential per-principal backoff so a persistent abuser waits
//! longer each episode.
//!
//! The controller itself holds no windows and reads no clocks of its
//! own: every decision is a pure function of (firing?, now, this
//! principal's episode history), which keeps it deterministic and
//! trivially checkpointable.

use std::fmt;

use vino_rm::PrincipalId;
use vino_sim::Cycles;

/// Backoff schedule for denied principals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// First-episode deny duration.
    pub base_backoff: Cycles,
    /// Ceiling the per-episode doubling saturates at.
    pub max_backoff: Cycles,
}

impl Default for AdmissionPolicy {
    fn default() -> AdmissionPolicy {
        AdmissionPolicy { base_backoff: Cycles::from_ms(500), max_backoff: Cycles::from_ms(60_000) }
    }
}

/// The controller's verdict on one install attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// No alert blames the principal and no backoff is pending.
    Allowed,
    /// The install is refused until the virtual clock reaches `until`.
    Denied {
        /// Deadline after which the principal may retry.
        until: Cycles,
    },
}

/// Running decision counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Installs waved through.
    pub allows: u64,
    /// Installs refused (pending backoff or firing alert).
    pub denies: u64,
}

/// One principal's deny history. Principals that have never been
/// denied carry no entry at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    principal: u64,
    /// Virtual-clock deadline of the active deny, 0 when none.
    until: u64,
    /// Consecutive deny episodes (resets on the next allowed install).
    episodes: u32,
}

/// Checkpointable controller state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdmissionState {
    entries: Vec<(u64, u64, u32)>,
    allows: u64,
    denies: u64,
}

/// Consults watch-plane alerts to gate the install path; see the
/// module docs and `docs/WATCH.md`.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    policy: AdmissionPolicy,
    entries: Vec<Entry>,
    stats: AdmissionStats,
}

impl Default for AdmissionController {
    fn default() -> AdmissionController {
        AdmissionController::new()
    }
}

impl AdmissionController {
    /// A controller with the default backoff schedule.
    pub fn new() -> AdmissionController {
        AdmissionController::with_policy(AdmissionPolicy::default())
    }

    /// A controller with an explicit backoff schedule.
    pub fn with_policy(policy: AdmissionPolicy) -> AdmissionController {
        AdmissionController { policy, entries: Vec::new(), stats: AdmissionStats::default() }
    }

    /// The active policy.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Gates one install attempt by `principal` at `now`. `firing` is
    /// the watch plane's answer to "does any per-principal alert
    /// currently blame this principal?" (the caller polls the plane
    /// first so stale alerts cannot deny).
    ///
    /// A pending backoff denies regardless of the alert state — the
    /// deadline is the contract. Once it passes, a still-firing alert
    /// starts the next episode with doubled backoff; a clean bill of
    /// health admits and resets the episode count.
    pub fn decide(&mut self, principal: PrincipalId, firing: bool, now: Cycles) -> Decision {
        let policy = self.policy;
        let e = self.entry_mut(principal.0);
        if now.get() < e.until {
            let until = Cycles(e.until);
            self.stats.denies += 1;
            return Decision::Denied { until };
        }
        if firing {
            let shift = e.episodes.min(16);
            let backoff = policy
                .base_backoff
                .get()
                .saturating_mul(1u64 << shift)
                .min(policy.max_backoff.get());
            e.until = now.get() + backoff;
            e.episodes += 1;
            let until = Cycles(e.until);
            self.stats.denies += 1;
            return Decision::Denied { until };
        }
        e.until = 0;
        e.episodes = 0;
        self.stats.allows += 1;
        Decision::Allowed
    }

    /// The deadline currently denying `principal`, if one is pending at
    /// `now` (inspection only — does not count as a decision).
    pub fn deny_until(&self, principal: PrincipalId, now: Cycles) -> Option<Cycles> {
        self.entries
            .iter()
            .find(|e| e.principal == principal.0 && now.get() < e.until)
            .map(|e| Cycles(e.until))
    }

    /// Decision counters.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Snapshot for full-world checkpointing.
    pub fn export_state(&self) -> AdmissionState {
        AdmissionState {
            entries: self.entries.iter().map(|e| (e.principal, e.until, e.episodes)).collect(),
            allows: self.stats.allows,
            denies: self.stats.denies,
        }
    }

    /// Replaces the controller's history with a checkpoint snapshot.
    /// The policy is configuration, not state, and is kept.
    pub fn restore_state(&mut self, st: &AdmissionState) {
        self.entries = st
            .entries
            .iter()
            .map(|&(principal, until, episodes)| Entry { principal, until, episodes })
            .collect();
        self.stats = AdmissionStats { allows: st.allows, denies: st.denies };
    }

    fn entry_mut(&mut self, principal: u64) -> &mut Entry {
        if let Some(i) = self.entries.iter().position(|e| e.principal == principal) {
            return &mut self.entries[i];
        }
        self.entries.push(Entry { principal, until: 0, episodes: 0 });
        self.entries.last_mut().expect("just pushed")
    }
}

impl fmt::Display for AdmissionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "allows={} denies={}", self.allows, self.denies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: PrincipalId = PrincipalId(7);

    #[test]
    fn healthy_principal_is_admitted() {
        let mut ac = AdmissionController::new();
        assert_eq!(ac.decide(P, false, Cycles(0)), Decision::Allowed);
        assert_eq!(ac.stats().allows, 1);
        assert!(ac.deny_until(P, Cycles(0)).is_none());
    }

    #[test]
    fn firing_alert_denies_with_base_backoff() {
        let mut ac = AdmissionController::new();
        let now = Cycles::from_ms(10);
        let Decision::Denied { until } = ac.decide(P, true, now) else {
            panic!("firing alert must deny");
        };
        assert_eq!(until, now + AdmissionPolicy::default().base_backoff);
        // The deadline holds even if the alert resolves meanwhile.
        let mid = Cycles(now.get() + 1);
        assert!(matches!(ac.decide(P, false, mid), Decision::Denied { until: u } if u == until));
        assert_eq!(ac.stats().denies, 2);
    }

    #[test]
    fn episodes_double_until_capped() {
        let policy = AdmissionPolicy { base_backoff: Cycles(100), max_backoff: Cycles(350) };
        let mut ac = AdmissionController::with_policy(policy);
        let mut now = Cycles(0);
        let mut backoffs = Vec::new();
        for _ in 0..4 {
            let Decision::Denied { until } = ac.decide(P, true, now) else {
                panic!("still firing, still denied");
            };
            backoffs.push(until.get() - now.get());
            now = until; // retry exactly at the deadline
        }
        assert_eq!(backoffs, vec![100, 200, 350, 350], "doubling saturates at the cap");
    }

    #[test]
    fn allowed_install_resets_episodes() {
        let mut ac = AdmissionController::with_policy(AdmissionPolicy {
            base_backoff: Cycles(100),
            max_backoff: Cycles(1_000_000),
        });
        let Decision::Denied { until } = ac.decide(P, true, Cycles(0)) else { panic!() };
        let Decision::Denied { until } = ac.decide(P, true, until) else { panic!() };
        assert_eq!(ac.decide(P, false, until), Decision::Allowed);
        // History wiped: the next episode starts from the base again.
        let Decision::Denied { until: next } = ac.decide(P, true, until) else { panic!() };
        assert_eq!(next.get() - until.get(), 100, "episode count was reset");
    }

    #[test]
    fn principals_are_independent() {
        let q = PrincipalId(8);
        let mut ac = AdmissionController::new();
        assert!(matches!(ac.decide(P, true, Cycles(0)), Decision::Denied { .. }));
        assert_eq!(ac.decide(q, false, Cycles(0)), Decision::Allowed);
    }

    #[test]
    fn state_round_trips() {
        let mut ac = AdmissionController::new();
        ac.decide(P, true, Cycles(5));
        ac.decide(PrincipalId(9), false, Cycles(6));
        let st = ac.export_state();
        let mut fresh = AdmissionController::new();
        fresh.restore_state(&st);
        assert_eq!(fresh.export_state(), st);
        assert_eq!(fresh.stats(), ac.stats());
        assert_eq!(fresh.deny_until(P, Cycles(6)), ac.deny_until(P, Cycles(6)));
    }
}

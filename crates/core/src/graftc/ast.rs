//! The GraftC abstract syntax tree.

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<` (unsigned)
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// An integer literal.
    Int(u64),
    /// A variable reference.
    Var(String),
    /// A binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary negation (two's complement).
    Neg(Box<Expr>),
    /// Logical not: `!e` is 1 if e == 0 else 0.
    Not(Box<Expr>),
    /// A kernel call `name(args...)`, at most 4 arguments.
    Call {
        /// Kernel function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// A word load `mem[addr]`.
    Mem(Box<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `let name = expr;`
    Let {
        /// Variable name.
        name: String,
        /// Initialiser.
        value: Expr,
    },
    /// `name = expr;`
    Assign {
        /// Target variable.
        name: String,
        /// New value.
        value: Expr,
    },
    /// `mem[addr] = value;`
    MemStore {
        /// Address expression.
        addr: Expr,
        /// Value expression.
        value: Expr,
    },
    /// `if (cond) {..} else {..}`
    If {
        /// Condition (nonzero = true).
        cond: Expr,
        /// Then-branch.
        then_body: Vec<Stmt>,
        /// Else-branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `while (cond) {..}`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return expr;`
    Return(Expr),
    /// An expression evaluated for its effects (usually a call).
    Expr(Expr),
}

/// The single `fn main(params...)` a graft defines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Parameter names (≤ 4, mapped to `r1..r4`).
    pub params: Vec<String>,
    /// The body.
    pub body: Vec<Stmt>,
}

//! The GraftC tokenizer.

use std::fmt;

/// A token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Token,
    /// 1-based source line.
    pub line: usize,
}

/// GraftC tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,
    /// `mem`
    Mem,
    /// An identifier.
    Ident(String),
    /// An unsigned integer literal (decimal or 0x hex).
    Int(u64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `!`
    Bang,
}

/// Tokenisation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenises GraftC source. `//` comments run to end of line.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Spanned { tok: Token::LParen, line });
                i += 1;
            }
            ')' => {
                out.push(Spanned { tok: Token::RParen, line });
                i += 1;
            }
            '{' => {
                out.push(Spanned { tok: Token::LBrace, line });
                i += 1;
            }
            '}' => {
                out.push(Spanned { tok: Token::RBrace, line });
                i += 1;
            }
            '[' => {
                out.push(Spanned { tok: Token::LBracket, line });
                i += 1;
            }
            ']' => {
                out.push(Spanned { tok: Token::RBracket, line });
                i += 1;
            }
            ',' => {
                out.push(Spanned { tok: Token::Comma, line });
                i += 1;
            }
            ';' => {
                out.push(Spanned { tok: Token::Semi, line });
                i += 1;
            }
            '+' => {
                out.push(Spanned { tok: Token::Plus, line });
                i += 1;
            }
            '-' => {
                out.push(Spanned { tok: Token::Minus, line });
                i += 1;
            }
            '*' => {
                out.push(Spanned { tok: Token::Star, line });
                i += 1;
            }
            '/' => {
                out.push(Spanned { tok: Token::Slash, line });
                i += 1;
            }
            '%' => {
                out.push(Spanned { tok: Token::Percent, line });
                i += 1;
            }
            '&' => {
                out.push(Spanned { tok: Token::Amp, line });
                i += 1;
            }
            '|' => {
                out.push(Spanned { tok: Token::Pipe, line });
                i += 1;
            }
            '^' => {
                out.push(Spanned { tok: Token::Caret, line });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'<') {
                    out.push(Spanned { tok: Token::Shl, line });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&'=') {
                    out.push(Spanned { tok: Token::Le, line });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Token::Lt, line });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'>') {
                    out.push(Spanned { tok: Token::Shr, line });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&'=') {
                    out.push(Spanned { tok: Token::Ge, line });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Token::Gt, line });
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Spanned { tok: Token::Eq, line });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Token::Assign, line });
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Spanned { tok: Token::Ne, line });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Token::Bang, line });
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                let hex = c == '0' && bytes.get(i + 1) == Some(&'x');
                if hex {
                    i += 2;
                    let ds = i;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let text: String = bytes[ds..i].iter().collect();
                    let v = u64::from_str_radix(&text, 16)
                        .map_err(|_| LexError { line, msg: format!("bad hex literal 0x{text}") })?;
                    out.push(Spanned { tok: Token::Int(v), line });
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text: String = bytes[start..i].iter().collect();
                    let v = text
                        .parse()
                        .map_err(|_| LexError { line, msg: format!("bad literal {text}") })?;
                    out.push(Spanned { tok: Token::Int(v), line });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                let tok = match word.as_str() {
                    "fn" => Token::Fn,
                    "let" => Token::Let,
                    "if" => Token::If,
                    "else" => Token::Else,
                    "while" => Token::While,
                    "return" => Token::Return,
                    "mem" => Token::Mem,
                    _ => Token::Ident(word),
                };
                out.push(Spanned { tok, line });
            }
            other => return Err(LexError { line, msg: format!("unexpected character `{other}`") }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_idents_numbers() {
        assert_eq!(
            toks("fn main(x) { let y = 0x10 + 42; }"),
            vec![
                Token::Fn,
                Token::Ident("main".into()),
                Token::LParen,
                Token::Ident("x".into()),
                Token::RParen,
                Token::LBrace,
                Token::Let,
                Token::Ident("y".into()),
                Token::Assign,
                Token::Int(16),
                Token::Plus,
                Token::Int(42),
                Token::Semi,
                Token::RBrace,
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            toks("== != <= >= << >> < > = !"),
            vec![
                Token::Eq,
                Token::Ne,
                Token::Le,
                Token::Ge,
                Token::Shl,
                Token::Shr,
                Token::Lt,
                Token::Gt,
                Token::Assign,
                Token::Bang,
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let spanned = lex("let a = 1; // comment\nlet b = 2;").unwrap();
        assert_eq!(spanned.last().unwrap().line, 2);
    }

    #[test]
    fn errors_carry_lines() {
        let e = lex("let x = 1;\nlet @ = 2;").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains('@'));
    }

    #[test]
    fn bad_hex_rejected() {
        assert!(lex("0x").is_err());
    }
}

//! GraftC code generation: AST → GraftVM instructions.
//!
//! Register discipline (compatible with the kernel calling convention
//! and the MiSFIT reserved register):
//!
//! | Registers | Use |
//! |---|---|
//! | `r0` | kernel-call results / scratch zero |
//! | `r1..r4` | incoming parameters; re-used to marshal call arguments |
//! | `r5..r10` | named variables (parameters are copied here on entry) |
//! | `r11..r13` | the expression temp stack |
//! | `r14` | reserved for MiSFIT (never touched) |
//!
//! Exceeding the variable file or the temp stack is a *compile-time*
//! error — GraftC never spills, so generated code is easy to audit.

use vino_vm::isa::{AluOp, Cond, Instr, Program, Reg};
use vino_vm::SymbolTable;

use super::ast::{BinOp, Expr, Function, Stmt};
use crate::hostfn;

/// Maximum named variables (parameters included): `r5..=r10`.
pub const MAX_VARS: usize = 6;
/// Expression temp-stack depth: `r11..=r13`.
pub const MAX_TEMP_DEPTH: usize = 3;

const VAR_BASE: u8 = 5;
const TEMP_BASE: u8 = 11;

struct Cg {
    instrs: Vec<Instr>,
    vars: Vec<String>,
    temp_depth: usize,
    syms: SymbolTable,
}

/// Compiles a parsed function into a program named `name`.
pub fn compile(name: &str, f: &Function) -> Result<Program, String> {
    let mut cg =
        Cg { instrs: Vec::new(), vars: Vec::new(), temp_depth: 0, syms: hostfn::symbols() };
    // Prologue: copy parameters out of the argument registers so calls
    // can re-use r1..r4 for marshalling.
    for (i, p) in f.params.iter().enumerate() {
        let var = cg.declare(p)?;
        cg.instrs.push(Instr::Mov { d: var, s: Reg(1 + i as u8) });
    }
    cg.body(&f.body)?;
    // Implicit `return 0` at the end.
    cg.instrs.push(Instr::Const { d: Reg(0), imm: 0 });
    cg.instrs.push(Instr::Halt { result: Reg(0) });
    let prog = Program::new(name, cg.instrs);
    prog.validate().map_err(|e| format!("internal: emitted invalid code: {e}"))?;
    Ok(prog)
}

impl Cg {
    fn declare(&mut self, name: &str) -> Result<Reg, String> {
        if self.vars.iter().any(|v| v == name) {
            return Err(format!("variable `{name}` already declared"));
        }
        if self.vars.len() >= MAX_VARS {
            return Err(format!("too many variables (max {MAX_VARS}); grafts are small by design"));
        }
        self.vars.push(name.to_string());
        Ok(Reg(VAR_BASE + (self.vars.len() - 1) as u8))
    }

    fn var(&self, name: &str) -> Result<Reg, String> {
        self.vars
            .iter()
            .position(|v| v == name)
            .map(|i| Reg(VAR_BASE + i as u8))
            .ok_or_else(|| format!("unknown variable `{name}`"))
    }

    fn push_temp(&mut self) -> Result<Reg, String> {
        if self.temp_depth >= MAX_TEMP_DEPTH {
            return Err("expression too deeply nested (temp stack exhausted)".to_string());
        }
        let r = Reg(TEMP_BASE + self.temp_depth as u8);
        self.temp_depth += 1;
        Ok(r)
    }

    fn pop_temp(&mut self, n: usize) {
        debug_assert!(self.temp_depth >= n);
        self.temp_depth -= n;
    }

    fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    fn body(&mut self, stmts: &[Stmt]) -> Result<(), String> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), String> {
        match s {
            Stmt::Let { name, value } => {
                let t = self.expr(value)?;
                let var = self.declare(name)?;
                self.instrs.push(Instr::Mov { d: var, s: t });
                self.pop_temp(1);
            }
            Stmt::Assign { name, value } => {
                let t = self.expr(value)?;
                let var = self.var(name)?;
                self.instrs.push(Instr::Mov { d: var, s: t });
                self.pop_temp(1);
            }
            Stmt::MemStore { addr, value } => {
                let ta = self.expr(addr)?;
                let tv = self.expr(value)?;
                self.instrs.push(Instr::StoreW { s: tv, addr: ta, off: 0 });
                self.pop_temp(2);
            }
            Stmt::If { cond, then_body, else_body } => {
                let t = self.expr(cond)?;
                self.pop_temp(1);
                self.instrs.push(Instr::Const { d: Reg(0), imm: 0 });
                let br_else = self.here();
                self.instrs.push(Instr::Br { cond: Cond::Eq, a: t, b: Reg(0), target: 0 });
                self.body(then_body)?;
                if else_body.is_empty() {
                    let end = self.here();
                    self.instrs[br_else as usize] =
                        self.instrs[br_else as usize].with_branch_target(end);
                } else {
                    let jmp_end = self.here();
                    self.instrs.push(Instr::Jmp { target: 0 });
                    let else_start = self.here();
                    self.instrs[br_else as usize] =
                        self.instrs[br_else as usize].with_branch_target(else_start);
                    self.body(else_body)?;
                    let end = self.here();
                    self.instrs[jmp_end as usize] =
                        self.instrs[jmp_end as usize].with_branch_target(end);
                }
            }
            Stmt::While { cond, body } => {
                let top = self.here();
                let t = self.expr(cond)?;
                self.pop_temp(1);
                self.instrs.push(Instr::Const { d: Reg(0), imm: 0 });
                let br_end = self.here();
                self.instrs.push(Instr::Br { cond: Cond::Eq, a: t, b: Reg(0), target: 0 });
                self.body(body)?;
                self.instrs.push(Instr::Jmp { target: top });
                let end = self.here();
                self.instrs[br_end as usize] = self.instrs[br_end as usize].with_branch_target(end);
            }
            Stmt::Return(e) => {
                let t = self.expr(e)?;
                self.instrs.push(Instr::Halt { result: t });
                self.pop_temp(1);
            }
            Stmt::Expr(e) => {
                let _ = self.expr(e)?;
                self.pop_temp(1);
            }
        }
        Ok(())
    }

    /// Evaluates `e`, leaving the result in a fresh temp register that
    /// remains "pushed" (the caller pops it).
    fn expr(&mut self, e: &Expr) -> Result<Reg, String> {
        match e {
            Expr::Int(v) => {
                let t = self.push_temp()?;
                self.instrs.push(Instr::Const { d: t, imm: *v as i64 });
                Ok(t)
            }
            Expr::Var(name) => {
                let var = self.var(name)?;
                let t = self.push_temp()?;
                self.instrs.push(Instr::Mov { d: t, s: var });
                Ok(t)
            }
            Expr::Neg(inner) => {
                let ti = self.expr(inner)?;
                self.instrs.push(Instr::Const { d: Reg(0), imm: 0 });
                self.instrs.push(Instr::Alu { op: AluOp::Sub, d: ti, a: Reg(0), b: ti });
                Ok(ti)
            }
            Expr::Not(inner) => {
                let ti = self.expr(inner)?;
                self.emit_bool(Cond::Eq, ti, ti, Some(0));
                Ok(ti)
            }
            Expr::Mem(addr) => {
                let ta = self.expr(addr)?;
                self.instrs.push(Instr::LoadW { d: ta, addr: ta, off: 0 });
                Ok(ta)
            }
            Expr::Bin { op, lhs, rhs } => {
                let tl = self.expr(lhs)?;
                let tr = self.expr(rhs)?;
                // Result lands in the lhs temp; rhs temp is popped.
                match op {
                    BinOp::Add => self.alu(AluOp::Add, tl, tr),
                    BinOp::Sub => self.alu(AluOp::Sub, tl, tr),
                    BinOp::Mul => self.alu(AluOp::Mul, tl, tr),
                    BinOp::Div => self.alu(AluOp::Div, tl, tr),
                    BinOp::Rem => self.alu(AluOp::Rem, tl, tr),
                    BinOp::And => self.alu(AluOp::And, tl, tr),
                    BinOp::Or => self.alu(AluOp::Or, tl, tr),
                    BinOp::Xor => self.alu(AluOp::Xor, tl, tr),
                    BinOp::Shl => self.alu(AluOp::Shl, tl, tr),
                    BinOp::Shr => self.alu(AluOp::Shr, tl, tr),
                    BinOp::Eq => self.emit_bool(Cond::Eq, tl, tr, None),
                    BinOp::Ne => self.emit_bool(Cond::Ne, tl, tr, None),
                    BinOp::Lt => self.emit_bool(Cond::LtU, tl, tr, None),
                    BinOp::Ge => self.emit_bool(Cond::GeU, tl, tr, None),
                    // a > b  ≡  b < a;  a <= b  ≡  b >= a.
                    BinOp::Gt => self.emit_bool_swapped(Cond::LtU, tl, tr),
                    BinOp::Le => self.emit_bool_swapped(Cond::GeU, tl, tr),
                }
                self.pop_temp(1);
                Ok(tl)
            }
            Expr::Call { name, args } => {
                let id = self
                    .syms
                    .lookup(name)
                    .ok_or_else(|| format!("unknown kernel function `{name}`"))?;
                if args.len() > MAX_TEMP_DEPTH {
                    return Err(format!(
                        "calls take at most {MAX_TEMP_DEPTH} arguments in GraftC                          (temp-register file)"
                    ));
                }
                let mut temps = Vec::with_capacity(args.len());
                for a in args {
                    temps.push(self.expr(a)?);
                }
                // Marshal into r1..rN only after every argument (and any
                // nested call inside them) has fully evaluated.
                for (i, t) in temps.iter().enumerate() {
                    self.instrs.push(Instr::Mov { d: Reg(1 + i as u8), s: *t });
                }
                self.pop_temp(temps.len());
                self.instrs.push(Instr::Call { func: id });
                let t = self.push_temp()?;
                self.instrs.push(Instr::Mov { d: t, s: Reg(0) });
                Ok(t)
            }
        }
    }

    fn alu(&mut self, op: AluOp, d: Reg, b: Reg) {
        self.instrs.push(Instr::Alu { op, d, a: d, b });
    }

    /// Emits `d = (a <cond> b) ? 1 : 0`, clobbering `d` last so `a`/`b`
    /// may alias it. If `imm_b` is set, compares against that literal
    /// through `r0`.
    fn emit_bool(&mut self, cond: Cond, a: Reg, b: Reg, imm_b: Option<i64>) {
        let b = match imm_b {
            Some(v) => {
                self.instrs.push(Instr::Const { d: Reg(0), imm: v });
                Reg(0)
            }
            None => b,
        };
        // tmp result in r0-free pattern: use the branch skeleton with
        // the destination written after the compare reads its inputs.
        //   br cond a, b -> Ltrue
        //   const d, 0 ; jmp Lend
        //   Ltrue: const d, 1
        //   Lend:
        let br = self.here();
        self.instrs.push(Instr::Br { cond, a, b, target: 0 });
        self.instrs.push(Instr::Const { d: a, imm: 0 });
        let jmp = self.here();
        self.instrs.push(Instr::Jmp { target: 0 });
        let ltrue = self.here();
        self.instrs[br as usize] = self.instrs[br as usize].with_branch_target(ltrue);
        self.instrs.push(Instr::Const { d: a, imm: 1 });
        let lend = self.here();
        self.instrs[jmp as usize] = self.instrs[jmp as usize].with_branch_target(lend);
    }

    fn emit_bool_swapped(&mut self, cond: Cond, tl: Reg, tr: Reg) {
        // d (== tl) = (tr <cond> tl) ? 1 : 0.
        let br = self.here();
        self.instrs.push(Instr::Br { cond, a: tr, b: tl, target: 0 });
        self.instrs.push(Instr::Const { d: tl, imm: 0 });
        let jmp = self.here();
        self.instrs.push(Instr::Jmp { target: 0 });
        let ltrue = self.here();
        self.instrs[br as usize] = self.instrs[br as usize].with_branch_target(ltrue);
        self.instrs.push(Instr::Const { d: tl, imm: 1 });
        let lend = self.here();
        self.instrs[jmp as usize] = self.instrs[jmp as usize].with_branch_target(lend);
    }
}

#[cfg(test)]
mod tests {
    use std::rc::Rc;

    use vino_sim::{ThreadId, VirtualClock};
    use vino_vm::interp::{Exit, NullKernel, Vm};
    use vino_vm::mem::{AddressSpace, Protection};

    use super::super::compile_source;
    use crate::engine::{GraftEngine, GraftInstance, InvokeOutcome};

    /// Runs a GraftC program standalone (no kernel) with args.
    fn run(src: &str, args: [u64; 4]) -> u64 {
        let prog = compile_source("t", src).unwrap();
        let mem = AddressSpace::new(4096, 256, Protection::Sfi);
        let mut vm = Vm::new(mem);
        vm.regs[1] = args[0];
        vm.regs[2] = args[1];
        vm.regs[3] = args[2];
        vm.regs[4] = args[3];
        let clock = VirtualClock::new();
        let mut fuel = 1_000_000;
        match vm.run(&prog, &mut NullKernel, &clock, &mut fuel) {
            Exit::Halted(v) => v,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run("fn main() { return 1 + 2 * 3; }", [0; 4]), 7);
        assert_eq!(run("fn main() { return (1 + 2) * 3; }", [0; 4]), 9);
        assert_eq!(run("fn main(a, b) { return a % b + a / b; }", [17, 5, 0, 0]), 2 + 3);
        assert_eq!(run("fn main() { return 1 << 4 | 3; }", [0; 4]), 19);
        assert_eq!(run("fn main() { return 0xFF & 0x0F ^ 1; }", [0; 4]), 14);
    }

    #[test]
    fn comparisons_yield_bits() {
        assert_eq!(run("fn main(a, b) { return a < b; }", [3, 4, 0, 0]), 1);
        assert_eq!(run("fn main(a, b) { return a < b; }", [4, 3, 0, 0]), 0);
        assert_eq!(run("fn main(a, b) { return a >= b; }", [4, 4, 0, 0]), 1);
        assert_eq!(run("fn main(a, b) { return a > b; }", [5, 4, 0, 0]), 1);
        assert_eq!(run("fn main(a, b) { return a <= b; }", [5, 4, 0, 0]), 0);
        assert_eq!(run("fn main(a, b) { return a == b; }", [7, 7, 0, 0]), 1);
        assert_eq!(run("fn main(a, b) { return a != b; }", [7, 7, 0, 0]), 0);
        assert_eq!(run("fn main(a) { return !a; }", [0, 0, 0, 0]), 1);
        assert_eq!(run("fn main(a) { return !a; }", [9, 0, 0, 0]), 0);
    }

    #[test]
    fn unary_negation_wraps() {
        assert_eq!(run("fn main(a) { return -a; }", [1, 0, 0, 0]), u64::MAX);
        assert_eq!(run("fn main(a) { return -a + a; }", [12345, 0, 0, 0]), 0);
    }

    #[test]
    fn control_flow() {
        let src = "fn main(x) {
            if (x > 10) { return 1; }
            else if (x > 5) { return 2; }
            else { return 3; }
        }";
        assert_eq!(run(src, [11, 0, 0, 0]), 1);
        assert_eq!(run(src, [7, 0, 0, 0]), 2);
        assert_eq!(run(src, [1, 0, 0, 0]), 3);
    }

    #[test]
    fn while_loops() {
        // Sum 1..=n.
        let src = "fn main(n) {
            let acc = 0;
            let i = 0;
            while (i < n) {
                i = i + 1;
                acc = acc + i;
            }
            return acc;
        }";
        assert_eq!(run(src, [10, 0, 0, 0]), 55);
        assert_eq!(run(src, [0, 0, 0, 0]), 0);
    }

    #[test]
    fn implicit_return_is_zero() {
        assert_eq!(run("fn main() { let x = 5; }", [0; 4]), 0);
    }

    #[test]
    fn mem_access_compiles_and_is_sandboxed() {
        // Store then load through mem[]; addresses are graft-segment
        // absolute (the graft gets its base from shared_base in real
        // code; here we pass it as a parameter).
        let prog = compile_source(
            "t",
            "fn main(base) {
                mem[base + 8] = 1234;
                return mem[base + 8] + 1;
            }",
        )
        .unwrap();
        let mem = AddressSpace::new(4096, 256, Protection::Sfi);
        let base = mem.seg_base();
        let mut vm = Vm::new(mem);
        vm.regs[1] = base;
        let clock = VirtualClock::new();
        let mut fuel = 10_000;
        assert_eq!(vm.run(&prog, &mut NullKernel, &clock, &mut fuel), Exit::Halted(1235));
    }

    #[test]
    fn kernel_calls_through_the_full_pipeline() {
        // Compile GraftC, run it as a real graft with kernel calls.
        let src = "fn main(slot, value) {
            kv_set(slot, value);
            let got = kv_get(slot);
            log(got);
            return got * 2;
        }";
        let prog = compile_source("kv-graft", src).unwrap();
        let engine = GraftEngine::new(VirtualClock::new());
        let principal = engine.rm.borrow_mut().create_graft_principal();
        let mem = AddressSpace::new(4096, 256, Protection::Sfi);
        let mut g = GraftInstance::new(Rc::clone(&engine), prog, mem, ThreadId(1), principal);
        match g.invoke([9, 21, 0, 0]) {
            InvokeOutcome::Ok { result, log, .. } => {
                assert_eq!(result, 42);
                assert_eq!(log, vec![21]);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(engine.kv_read(9), 21);
    }

    #[test]
    fn nested_calls_marshal_correctly() {
        // log(kv_get(3) + 1) — the inner call runs before the outer
        // marshalling clobbers r1.
        let src = "fn main() {
            kv_set(3, 41);
            log(kv_get(3) + 1);
            return 0;
        }";
        let prog = compile_source("nest", src).unwrap();
        let engine = GraftEngine::new(VirtualClock::new());
        let principal = engine.rm.borrow_mut().create_graft_principal();
        let mem = AddressSpace::new(4096, 256, Protection::Sfi);
        let mut g = GraftInstance::new(Rc::clone(&engine), prog, mem, ThreadId(1), principal);
        match g.invoke([0; 4]) {
            InvokeOutcome::Ok { log, .. } => assert_eq!(log, vec![42]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn compile_errors_are_reported() {
        let e = |src: &str| compile_source("t", src).unwrap_err().to_string();
        assert!(e("fn main() { return nosuchfn(); }").contains("unknown kernel function"));
        assert!(e("fn main() { return y; }").contains("unknown variable"));
        assert!(e("fn main(a) { let a = 1; }").contains("already declared"));
        assert!(e("fn main() { let a=1; let b=1; let c=1; let d=1; let e=1; let f=1; let g=1; }")
            .contains("too many variables"));
        // Deep nesting exhausts the temp stack (no silent spill).
        assert!(e("fn main(a) { return a+(a+(a+(a+(a+a)))); }").contains("temp stack"));
    }

    #[test]
    fn division_by_zero_traps_at_runtime() {
        let prog = compile_source("t", "fn main(a) { return 1 / a; }").unwrap();
        let mem = AddressSpace::new(4096, 256, Protection::Sfi);
        let mut vm = Vm::new(mem);
        vm.regs[1] = 0;
        let clock = VirtualClock::new();
        let mut fuel = 1000;
        assert!(matches!(
            vm.run(&prog, &mut NullKernel, &clock, &mut fuel),
            Exit::Trapped(vino_vm::interp::Trap::DivByZero)
        ));
    }

    #[test]
    fn graftc_output_survives_misfit() {
        // The compiled code must pass the instrumentation pass (it must
        // never touch r14) and still compute correctly under SFI.
        let src = "fn main(base, n) {
            let i = 0;
            let acc = 0;
            while (i < n) {
                let addr = base + i * 4;
                mem[addr] = i;
                acc = acc + mem[addr];
                i = i + 1;
            }
            return acc;
        }";
        let prog = compile_source("sumup", src).unwrap();
        let (inst, stats) = vino_misfit::instrument(&prog).unwrap();
        assert!(stats.mem_accesses >= 2);
        let mem = AddressSpace::new(4096, 256, Protection::Sfi);
        let base = mem.seg_base();
        let mut vm = Vm::new(mem);
        vm.regs[1] = base;
        vm.regs[2] = 10;
        let clock = VirtualClock::new();
        let mut fuel = 100_000;
        assert_eq!(vm.run(&inst, &mut NullKernel, &clock, &mut fuel), Exit::Halted(45));
    }
}

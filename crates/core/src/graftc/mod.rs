//! GraftC — a small C-like language compiled to GraftVM code.
//!
//! The paper's grafts are "written in C++" (§3) and compiled before the
//! MiSFIT pass. GraftC plays that role here: applications write their
//! policies in a readable imperative language and the kernel toolchain
//! lowers them to GraftVM instructions, which then flow through the
//! normal MiSFIT instrument-sign-load pipeline.
//!
//! ```text
//! // A read-ahead policy in GraftC.
//! fn main(offset, len) {
//!     let next = offset + len;
//!     if (next < 16777216) {
//!         ra_submit(next, 4096);
//!     }
//!     return 0;
//! }
//! ```
//!
//! ## Language
//!
//! - One function `fn main(p1, p2, ...)` with up to 4 parameters
//!   (arriving in `r1..r4` per the kernel calling convention).
//! - `let x = expr;`, assignment `x = expr;`, `if (e) {..} else {..}`,
//!   `while (e) {..}`, `return expr;`, expression statements.
//! - Unsigned 64-bit arithmetic `+ - * / % & | ^ << >>`, comparisons
//!   `== != < <= > >=` (yielding 0/1), unary `!` and `-`.
//! - Word memory access: `mem[e]` as a value and `mem[e] = v;` as a
//!   store (sandboxed by MiSFIT like any other access).
//! - Kernel calls by name: `kv_get(slot)`, `ra_submit(off, len)`, ... —
//!   any graft-callable function (and the restricted names too: the
//!   *linker* rejects those, same as the paper's pipeline).
//!
//! ## Limits (compile-time errors, never miscompiles)
//!
//! - at most [`codegen::MAX_VARS`] variables (parameters included);
//! - expression nesting bounded by the temp-register file;
//! - no user-defined functions (grafts call the kernel, or other grafts
//!   through `call_graft`).

pub mod ast;
pub mod codegen;
pub mod lexer;
pub mod parser;

pub use codegen::compile;
pub use lexer::{LexError, Token};
pub use parser::ParseError;

use vino_vm::isa::Program;

/// Compilation errors from any stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Tokenisation failed.
    Lex(LexError),
    /// Parsing failed.
    Parse(ParseError),
    /// Code generation failed (limits, unknown names).
    Codegen(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Lex(e) => write!(f, "lex error: {e}"),
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Codegen(m) => write!(f, "codegen error: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles GraftC source to a GraftVM program named `name`.
pub fn compile_source(name: &str, src: &str) -> Result<Program, CompileError> {
    let tokens = lexer::lex(src).map_err(CompileError::Lex)?;
    let func = parser::parse(&tokens).map_err(CompileError::Parse)?;
    codegen::compile(name, &func).map_err(CompileError::Codegen)
}

//! The GraftC recursive-descent parser.
//!
//! Precedence, loosest to tightest:
//! comparison (`== != < <= > >=`, non-associative) →
//! bitwise (`& | ^`, left) → shift (`<< >>`, left) →
//! additive (`+ -`, left) → multiplicative (`* / %`, left) →
//! unary (`- !`) → primary.

use std::fmt;

use super::ast::{BinOp, Expr, Function, Stmt};
use super::lexer::{Spanned, Token};

/// Parse failures with a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line (0 = end of input).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    toks: &'a [Spanned],
    pos: usize,
}

/// Parses a token stream into the graft's `main` function.
pub fn parse(toks: &[Spanned]) -> Result<Function, ParseError> {
    let mut p = Parser { toks, pos: 0 };
    let f = p.function()?;
    if p.pos != toks.len() {
        return Err(p.err("trailing tokens after function body"));
    }
    Ok(f)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn line(&self) -> usize {
        self.toks.get(self.pos).map_or(0, |s| s.line)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { line: self.line(), msg: msg.into() }
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.toks.get(self.pos).map(|s| &s.tok);
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        self.expect(&Token::Fn, "`fn`")?;
        let name = self.ident()?;
        if name != "main" {
            return Err(self.err(format!("a graft defines `main`, found `{name}`")));
        }
        self.expect(&Token::LParen, "`(`")?;
        let mut params = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                params.push(self.ident()?);
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen, "`)`")?;
        if params.len() > 4 {
            return Err(self.err("grafts take at most 4 parameters (r1..r4)"));
        }
        let body = self.block()?;
        Ok(Function { params, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(&Token::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&Token::RBrace) {
            if self.peek().is_none() {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        self.pos += 1; // Consume `}`.
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Some(Token::Let) => {
                self.pos += 1;
                let name = self.ident()?;
                self.expect(&Token::Assign, "`=`")?;
                let value = self.expr()?;
                self.expect(&Token::Semi, "`;`")?;
                Ok(Stmt::Let { name, value })
            }
            Some(Token::If) => {
                self.pos += 1;
                self.expect(&Token::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(&Token::RParen, "`)`")?;
                let then_body = self.block()?;
                let else_body = if self.peek() == Some(&Token::Else) {
                    self.pos += 1;
                    if self.peek() == Some(&Token::If) {
                        // `else if`: wrap as a single-statement block.
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then_body, else_body })
            }
            Some(Token::While) => {
                self.pos += 1;
                self.expect(&Token::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(&Token::RParen, "`)`")?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            Some(Token::Return) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Token::Semi, "`;`")?;
                Ok(Stmt::Return(e))
            }
            Some(Token::Mem) => {
                self.pos += 1;
                self.expect(&Token::LBracket, "`[`")?;
                let addr = self.expr()?;
                self.expect(&Token::RBracket, "`]`")?;
                self.expect(&Token::Assign, "`=`")?;
                let value = self.expr()?;
                self.expect(&Token::Semi, "`;`")?;
                Ok(Stmt::MemStore { addr, value })
            }
            Some(Token::Ident(_)) => {
                // Assignment or expression statement (call).
                let save = self.pos;
                let name = self.ident()?;
                if self.peek() == Some(&Token::Assign) {
                    self.pos += 1;
                    let value = self.expr()?;
                    self.expect(&Token::Semi, "`;`")?;
                    Ok(Stmt::Assign { name, value })
                } else {
                    self.pos = save;
                    let e = self.expr()?;
                    self.expect(&Token::Semi, "`;`")?;
                    Ok(Stmt::Expr(e))
                }
            }
            other => Err(self.err(format!("expected a statement, found {other:?}"))),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.bitwise()?;
        let op = match self.peek() {
            Some(Token::Eq) => BinOp::Eq,
            Some(Token::Ne) => BinOp::Ne,
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::Le) => BinOp::Le,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Ge) => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.bitwise()?;
        Ok(Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
    }

    fn bitwise(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.shift()?;
        loop {
            let op = match self.peek() {
                Some(Token::Amp) => BinOp::And,
                Some(Token::Pipe) => BinOp::Or,
                Some(Token::Caret) => BinOp::Xor,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.shift()?;
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Some(Token::Shl) => BinOp::Shl,
                Some(Token::Shr) => BinOp::Shr,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.additive()?;
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Minus) => {
                self.pos += 1;
                Ok(Expr::Neg(Box::new(self.unary()?)))
            }
            Some(Token::Bang) => {
                self.pos += 1;
                Ok(Expr::Not(Box::new(self.unary()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump().cloned() {
            Some(Token::Int(v)) => Ok(Expr::Int(v)),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(e)
            }
            Some(Token::Mem) => {
                self.expect(&Token::LBracket, "`[`")?;
                let addr = self.expr()?;
                self.expect(&Token::RBracket, "`]`")?;
                Ok(Expr::Mem(Box::new(addr)))
            }
            Some(Token::Ident(name)) => {
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.peek() == Some(&Token::Comma) {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen, "`)`")?;
                    if args.len() > 4 {
                        return Err(self.err("kernel calls take at most 4 arguments"));
                    }
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(ParseError {
                line: self.toks.get(self.pos.saturating_sub(1)).map_or(0, |s| s.line),
                msg: format!("expected an expression, found {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::lexer::lex;
    use super::*;

    fn parse_src(src: &str) -> Result<Function, ParseError> {
        parse(&lex(src).unwrap())
    }

    #[test]
    fn parses_the_readme_graft() {
        let f = parse_src(
            "fn main(offset, len) {
                let next = offset + len;
                if (next < 16777216) {
                    ra_submit(next, 4096);
                }
                return 0;
            }",
        )
        .unwrap();
        assert_eq!(f.params, vec!["offset", "len"]);
        assert_eq!(f.body.len(), 3);
        assert!(matches!(f.body[1], Stmt::If { .. }));
    }

    #[test]
    fn precedence_mul_over_add_over_cmp() {
        let f = parse_src("fn main() { return 1 + 2 * 3 < 10; }").unwrap();
        let Stmt::Return(Expr::Bin { op: BinOp::Lt, lhs, .. }) = &f.body[0] else {
            panic!("{:?}", f.body[0]);
        };
        let Expr::Bin { op: BinOp::Add, rhs, .. } = lhs.as_ref() else {
            panic!("{lhs:?}");
        };
        assert!(matches!(rhs.as_ref(), Expr::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn else_if_chains() {
        let f = parse_src(
            "fn main(x) {
                if (x == 1) { return 10; }
                else if (x == 2) { return 20; }
                else { return 30; }
            }",
        )
        .unwrap();
        let Stmt::If { else_body, .. } = &f.body[0] else { panic!() };
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn mem_load_and_store() {
        let f = parse_src("fn main(p) { mem[p + 4] = mem[p] + 1; return 0; }").unwrap();
        assert!(matches!(f.body[0], Stmt::MemStore { .. }));
    }

    #[test]
    fn while_and_assign() {
        let f =
            parse_src("fn main() { let i = 0; while (i < 10) { i = i + 1; } return i; }").unwrap();
        assert!(matches!(f.body[1], Stmt::While { .. }));
    }

    #[test]
    fn errors_are_located() {
        let e = parse_src("fn main() {\n let = 3;\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse_src("fn other() { return 0; }").is_err());
        assert!(parse_src("fn main(a, b, c, d, e) { return 0; }").is_err());
        assert!(parse_src("fn main() { return f(1,2,3,4,5); }").is_err());
        assert!(parse_src("fn main() { return 0; } extra").is_err());
        assert!(parse_src("fn main() { if (1) { return 0; }").is_err());
    }
}

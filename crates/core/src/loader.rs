//! The dynamic graft loader.
//!
//! The §3.3/§3.6 load sequence, in order:
//!
//! 1. **Signature check** — recompute the image checksum and compare;
//!    mismatch ⇒ not loaded (Rule 6: "The kernel must not execute
//!    grafts that are not known to be safe").
//! 2. **Decode** the program from the verified bytes.
//! 3. **Link-time audit** of direct calls against the graft-callable
//!    list (Rules 4/7).
//! 4. **Restricted-point policy** — global graft points require a
//!    privileged installer (Rule 5, §2.3).
//! 5. **Principal creation** — a zero-limit resource principal, with
//!    the installer's transfers or billing applied (§3.2).

use std::fmt;
use std::rc::Rc;

use vino_misfit::{LinkError, MisfitTool, SignedImage, VerifyError};
use vino_rm::{PrincipalId, ResourceError, ResourceKind};
use vino_sim::{Cycles, ThreadId};
use vino_vm::mem::{AddressSpace, Protection};

use crate::engine::{GraftEngine, GraftInstance};

/// How the graft's resource consumption is accounted (§3.2).
#[derive(Debug, Clone)]
pub enum BillingMode {
    /// Transfer the listed amounts from the installer's limits to the
    /// graft's own (initially zero) limits.
    Transfer(Vec<(ResourceKind, u64)>),
    /// Bill every graft allocation against the installer's limits.
    BillInstaller,
}

/// Install-time options.
#[derive(Debug, Clone)]
pub struct InstallOpts {
    /// Whether the installer holds privilege (required for restricted /
    /// global graft points, §2.3).
    pub privileged: bool,
    /// Resource accounting mode.
    pub billing: BillingMode,
    /// Graft heap/stack segment size in bytes.
    pub seg_size: usize,
    /// Simulated kernel-region size visible to *unprotected* code (used
    /// by the benchmark "unsafe path"; irrelevant under SFI).
    pub kernel_region: usize,
    /// Memory protection for the graft's address space. `Sfi` for real
    /// installs; benchmarks use `Unprotected` to measure the unsafe
    /// path.
    pub protection: Protection,
}

impl Default for InstallOpts {
    fn default() -> InstallOpts {
        InstallOpts {
            privileged: false,
            billing: BillingMode::Transfer(Vec::new()),
            seg_size: 16 * 1024,
            kernel_region: 4096,
            protection: Protection::Sfi,
        }
    }
}

/// Why an install was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstallError {
    /// Signature verification failed (Rule 6).
    Verify(VerifyError),
    /// A direct call named a non-graft-callable function (Rules 4/7).
    Link(LinkError),
    /// The target graft point is restricted and the installer is not
    /// privileged (Rule 5).
    Restricted {
        /// The graft point's name.
        point: String,
    },
    /// Resource transfer at install failed.
    Resources(ResourceError),
    /// The named graft point does not exist.
    NoSuchPoint(String),
    /// The graft is quarantined: it aborted too many times recently and
    /// may not be reinstalled until its backoff deadline passes.
    Quarantined {
        /// The quarantined graft's name.
        graft: String,
        /// Virtual-clock time at which reinstall becomes permitted.
        until: Cycles,
    },
    /// The installer's blame account (cycles of abort cleanup billed to
    /// it) exceeded its ceiling; it may not install further grafts.
    BlameExceeded {
        /// The over-budget installing principal.
        principal: PrincipalId,
    },
    /// The admission controller refused the installer: a watch-plane
    /// alert blames the principal (or its deny backoff is still
    /// pending) and new installs are refused until the deadline.
    AdmissionDenied {
        /// The refused installing principal.
        principal: PrincipalId,
        /// Virtual-clock time at which installs become admissible
        /// again (provided the blaming alert has resolved by then).
        until: Cycles,
    },
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::Verify(e) => write!(f, "verification failed: {e}"),
            InstallError::Link(e) => write!(f, "link audit failed: {e}"),
            InstallError::Restricted { point } => {
                write!(f, "graft point `{point}` is restricted to privileged users")
            }
            InstallError::Resources(e) => write!(f, "resource setup failed: {e}"),
            InstallError::NoSuchPoint(p) => write!(f, "no graft point named `{p}`"),
            InstallError::Quarantined { graft, until } => {
                write!(f, "graft `{graft}` is quarantined until cycle {}", until.get())
            }
            InstallError::BlameExceeded { principal } => {
                write!(f, "principal {principal:?} exceeded its abort-blame ceiling")
            }
            InstallError::AdmissionDenied { principal, until } => {
                write!(
                    f,
                    "principal {principal:?} refused by admission control until cycle {}",
                    until.get()
                )
            }
        }
    }
}

impl std::error::Error for InstallError {}

/// Runs the full load pipeline, producing an installed (but not yet
/// attached) graft instance.
pub fn load_graft(
    engine: &Rc<GraftEngine>,
    tool: &MisfitTool,
    image: &SignedImage,
    installer: PrincipalId,
    thread: ThreadId,
    opts: &InstallOpts,
) -> Result<GraftInstance, InstallError> {
    // 0. Reliability gates (§3.6 aftermath): an installer whose grafts
    // have billed it past its blame ceiling may not install, and a
    // graft name in quarantine is refused until its backoff expires.
    if engine.rm.borrow().blame_exceeded(installer) {
        return Err(InstallError::BlameExceeded { principal: installer });
    }
    // 1-2. Signature + decode.
    let program = tool.verify_and_decode(image).map_err(InstallError::Verify)?;
    if let Err(until) = engine.reliability.borrow().check_install(&program.name, engine.clock.now())
    {
        return Err(InstallError::Quarantined { graft: program.name.clone(), until });
    }
    // 3. Link-time direct-call audit.
    vino_misfit::verify_direct_calls(&program, &engine.callable).map_err(InstallError::Link)?;
    // 5. Principal: zero limits, then transfers/billing. Abort-blame
    // always lands on the installer, whatever the billing mode.
    let principal = engine.rm.borrow_mut().create_graft_principal();
    engine.rm.borrow_mut().blame_to(principal, installer);
    match &opts.billing {
        BillingMode::Transfer(amounts) => {
            for (kind, amount) in amounts {
                engine
                    .rm
                    .borrow_mut()
                    .transfer(installer, principal, *kind, *amount)
                    .map_err(InstallError::Resources)?;
            }
        }
        BillingMode::BillInstaller => {
            engine
                .rm
                .borrow_mut()
                .bill_to(principal, installer)
                .map_err(InstallError::Resources)?;
        }
    }
    let mem = AddressSpace::new(opts.seg_size, opts.kernel_region, opts.protection);
    Ok(GraftInstance::new(Rc::clone(engine), program, mem, thread, principal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vino_misfit::SigningKey;
    use vino_rm::Limits;
    use vino_sim::VirtualClock;
    use vino_vm::asm::assemble;

    use crate::hostfn;

    fn setup() -> (Rc<GraftEngine>, MisfitTool, PrincipalId) {
        let engine = GraftEngine::new(VirtualClock::new());
        let tool = MisfitTool::new(SigningKey::from_passphrase("loader-tests"));
        let installer = engine
            .rm
            .borrow_mut()
            .create_principal(Limits::of(&[(ResourceKind::KernelHeap, 1 << 20)]));
        (engine, tool, installer)
    }

    #[test]
    fn good_graft_loads() {
        let (engine, tool, installer) = setup();
        let prog = assemble("ok", "call $kv_get\nhalt r0", &hostfn::symbols()).unwrap();
        let (image, _) = tool.process(&prog).unwrap();
        let mut g =
            load_graft(&engine, &tool, &image, installer, ThreadId(1), &InstallOpts::default())
                .unwrap();
        assert_eq!(g.name, "ok");
        assert!(matches!(g.invoke([0; 4]), crate::engine::InvokeOutcome::Ok { .. }));
    }

    #[test]
    fn forged_signature_rejected() {
        let (engine, tool, installer) = setup();
        let prog = assemble("evil", "halt r0", &hostfn::symbols()).unwrap();
        let (mut image, _) = tool.process(&prog).unwrap();
        image.signature[3] ^= 0x40;
        let err =
            load_graft(&engine, &tool, &image, installer, ThreadId(1), &InstallOpts::default())
                .unwrap_err();
        assert!(matches!(err, InstallError::Verify(VerifyError::BadSignature)));
    }

    #[test]
    fn wrong_tool_key_rejected() {
        // Code signed by a different (untrusted) tool does not load:
        // "the kernel does not execute any grafts that are not known to
        // be safe" (Rule 6).
        let (engine, tool, installer) = setup();
        let rogue = MisfitTool::new(SigningKey::from_passphrase("rogue"));
        let prog = assemble("evil", "halt r0", &hostfn::symbols()).unwrap();
        let (image, _) = rogue.process(&prog).unwrap();
        let err =
            load_graft(&engine, &tool, &image, installer, ThreadId(1), &InstallOpts::default())
                .unwrap_err();
        assert!(matches!(err, InstallError::Verify(VerifyError::BadSignature)));
    }

    #[test]
    fn shutdown_call_rejected_at_link_time() {
        // §2.3: "a graft should not be able to call shutdown()".
        let (engine, tool, installer) = setup();
        let prog = assemble("evil", "call $shutdown\nhalt r0", &hostfn::symbols()).unwrap();
        let (image, _) = tool.process(&prog).unwrap();
        let err =
            load_graft(&engine, &tool, &image, installer, ThreadId(1), &InstallOpts::default())
                .unwrap_err();
        assert!(matches!(err, InstallError::Link(LinkError::ForbiddenDirectCall { .. })));
    }

    #[test]
    fn private_data_function_rejected() {
        // Rule 4: functions returning data the graft is not entitled to
        // are not graft-callable.
        let (engine, tool, installer) = setup();
        let prog = assemble("snoop", "call $read_user_data\nhalt r0", &hostfn::symbols()).unwrap();
        let (image, _) = tool.process(&prog).unwrap();
        assert!(load_graft(
            &engine,
            &tool,
            &image,
            installer,
            ThreadId(1),
            &InstallOpts::default()
        )
        .is_err());
    }

    #[test]
    fn transfer_billing_applies() {
        let (engine, tool, installer) = setup();
        let prog =
            assemble("alloc", "const r1, 100\ncall $kalloc\nhalt r0", &hostfn::symbols()).unwrap();
        let (image, _) = tool.process(&prog).unwrap();
        let opts = InstallOpts {
            billing: BillingMode::Transfer(vec![(ResourceKind::KernelHeap, 512)]),
            ..InstallOpts::default()
        };
        let mut g = load_graft(&engine, &tool, &image, installer, ThreadId(1), &opts).unwrap();
        assert_eq!(engine.rm.borrow().limit(g.principal, ResourceKind::KernelHeap), 512);
        assert!(matches!(g.invoke([0; 4]), crate::engine::InvokeOutcome::Ok { .. }));
    }

    #[test]
    fn transfer_exceeding_installer_fails() {
        let (engine, tool, installer) = setup();
        let prog = assemble("g", "halt r0", &hostfn::symbols()).unwrap();
        let (image, _) = tool.process(&prog).unwrap();
        let opts = InstallOpts {
            billing: BillingMode::Transfer(vec![(ResourceKind::KernelHeap, 1 << 30)]),
            ..InstallOpts::default()
        };
        let err = load_graft(&engine, &tool, &image, installer, ThreadId(1), &opts).unwrap_err();
        assert!(matches!(err, InstallError::Resources(_)));
    }

    #[test]
    fn bill_installer_mode() {
        let (engine, tool, installer) = setup();
        let prog =
            assemble("alloc", "const r1, 4096\ncall $kalloc\nhalt r0", &hostfn::symbols()).unwrap();
        let (image, _) = tool.process(&prog).unwrap();
        let opts = InstallOpts { billing: BillingMode::BillInstaller, ..InstallOpts::default() };
        let mut g = load_graft(&engine, &tool, &image, installer, ThreadId(1), &opts).unwrap();
        assert!(matches!(g.invoke([0; 4]), crate::engine::InvokeOutcome::Ok { .. }));
        assert_eq!(
            engine.rm.borrow().used(installer, ResourceKind::KernelHeap),
            4096,
            "charge landed on the installer"
        );
    }

    #[test]
    fn loaded_wild_graft_is_confined() {
        // End-to-end Rule 3: a hostile graft aimed at kernel memory,
        // processed by the real tool and loaded through the real
        // pipeline, cannot corrupt the kernel region.
        let (engine, tool, installer) = setup();
        let prog = assemble(
            "wild",
            "
            const r1, 0xC0000000
            const r2, 0x41414141
            storew r2, [r1+0]
            halt r0
            ",
            &hostfn::symbols(),
        )
        .unwrap();
        let (image, _) = tool.process(&prog).unwrap();
        let mut g =
            load_graft(&engine, &tool, &image, installer, ThreadId(1), &InstallOpts::default())
                .unwrap();
        match g.invoke([0; 4]) {
            crate::engine::InvokeOutcome::Ok { .. } => {}
            other => panic!("instrumented graft should run to completion: {other:?}"),
        }
        assert_eq!(g.mem_ref().kernel_write_count(), 0, "kernel region untouched");
    }
}

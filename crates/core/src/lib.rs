//! The VINO grafting architecture — the paper's primary contribution.
//!
//! This crate ties the substrates together into the system §3 describes:
//!
//! - [`hostfn`] — the graft-callable kernel ABI: the function ids grafts
//!   may call, the ids that exist but are *not* graft-callable
//!   (`shutdown`, functions returning private data — Rules 4/5/7), and
//!   the builder for the sparse callable hash table.
//! - [`engine`] — the graft wrapper: every invocation runs inside a
//!   transaction with fuel-bounded (preemptible) execution, resource
//!   limits swapped to the graft's principal, result validation, and
//!   abort + forcible unload on misbehaviour (§3.1, §3.6).
//! - [`loader`] — the dynamic loader: signature verification, link-time
//!   direct-call audit, restricted-point policy, zero-limit principal
//!   creation with transfer/billing (§3.2, §3.3).
//! - [`adapters`] — bridges from installed grafts to the subsystem hook
//!   traits: read-ahead ([`vino_fs::ReadAheadDelegate`]), page eviction
//!   ([`vino_mem::EvictionDelegate`]), scheduling
//!   ([`vino_sched::ScheduleDelegate`]) and stream transforms.
//! - [`points`] — the graft namespace and the two extension models:
//!   function graft points (replace a member function, Figure 1) and
//!   event graft points (add handlers for kernel events, Figure 2).
//! - [`lockmgr`] — the Figures 4/5 lock manager: the conventional
//!   `get_lock` versus the policy-encapsulated one, for the
//!   extreme-modularity cost analysis of §6.
//! - [`kernel`] — the [`kernel::Kernel`] facade wiring every subsystem,
//!   with install entry points and the event dispatch loop.
//! - [`graftc`] — the GraftC compiler: the C-like language applications
//!   write grafts in (standing in for the paper's C++), lowered to
//!   GraftVM code that flows through the normal MiSFIT pipeline.

pub mod adapters;
pub mod admission;
pub mod engine;
pub mod graftc;
pub mod hostfn;
pub mod kernel;
pub mod loader;
pub mod lockmgr;
pub mod points;
pub mod reliability;

pub use admission::{
    AdmissionController, AdmissionPolicy, AdmissionState, AdmissionStats, Decision,
};
pub use engine::{GraftEngine, GraftInstance, InvokeOutcome, InvokeStats};
pub use kernel::{AttachError, Kernel};
pub use loader::{BillingMode, InstallError, InstallOpts};
pub use points::{EventPoint, GraftNamespace, PointKind};
pub use reliability::{
    FailureKind, QuarantinePolicy, ReliabilityManager, ReliabilityState, Verdict,
};

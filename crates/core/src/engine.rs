//! The graft execution engine: the wrapper of §3.1.
//!
//! "When a function is grafted into the kernel a small wrapper function
//! is interposed; the wrapper begins a transaction for the graft
//! invocation and then calls the grafted function. When the grafted
//! function returns, the wrapper commits the transaction." On any trap,
//! CPU-hogging time-out, or resource-limit violation the wrapper aborts
//! instead, the undo stack runs, locks are released, and "the graft is
//! forcibly removed from the kernel, so that new invocations of the call
//! use normal kernel code and not the misbehaving graft code" (§3.6).

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use vino_misfit::CallableTable;
use vino_rm::{PrincipalId, ResourceAccountant, ResourceKind};
use vino_sim::fault::FaultPlane;
use vino_sim::metrics::{MetricTag, MetricsPlane};
use vino_sim::profile::{ProfTag, ProfilePlane};
use vino_sim::trace::{AbortKind, CauseCtx, GraftTag, TraceEvent, TracePlane};
use vino_sim::watch::WatchPlane;
use vino_sim::{costs, Cycles, ThreadId, VirtualClock};
use vino_txn::locks::{LockClass, LockId};
use vino_txn::manager::{AbortReason, AbortReport, TxnId, TxnManager};
use vino_vm::interp::{Exit, KernelApi, Trap, Vm};
use vino_vm::isa::{HostFnId, Program};
use vino_vm::mem::AddressSpace;

use crate::hostfn;
use crate::reliability::{self, ReliabilityManager};

/// Host-error codes surfaced to grafts (and to abort diagnostics).
pub mod errcode {
    /// Kernel-heap allocation denied: resource limit exceeded (§3.2).
    pub const NOMEM: u64 = 1;
    /// A lock could not be acquired within its time-out budget.
    pub const LOCK_TIMEOUT: u64 = 2;
    /// Kernel-state slot out of range.
    pub const BAD_SLOT: u64 = 3;
    /// Unknown lock handle.
    pub const BAD_LOCK: u64 = 4;
    /// Unknown subgraft handle in `call_graft`.
    pub const BAD_GRAFT: u64 = 5;
    /// A graft tried to invoke itself (directly or in a cycle).
    pub const GRAFT_RECURSION: u64 = 6;
    /// Graft-to-graft nesting exceeded the kernel's depth bound.
    pub const NEST_TOO_DEEP: u64 = 7;
}

/// Sentinel returned by `call_graft` when the callee aborted: "any
/// graft can abort without aborting its calling graft" (§3.1) — the
/// caller observes the failure as a value and decides what to do.
pub const CALLEE_ABORTED: u64 = u64::MAX;

/// Maximum graft-to-graft nesting depth.
pub const MAX_NEST_DEPTH: u32 = 8;

/// Number of kernel-state slots grafts may access through the
/// `kv_set`/`kv_get` accessor pair.
pub const KV_SLOTS: usize = 64;

/// Shared state every graft invocation needs: the clock, the transaction
/// manager, the resource accountant, the kernel-state store the accessor
/// functions guard, the graft-callable table and the lock-handle table.
pub struct GraftEngine {
    /// The virtual clock costs are charged to.
    pub clock: Rc<VirtualClock>,
    /// The transaction manager (§3.1).
    pub txn: Rc<RefCell<TxnManager>>,
    /// The resource accountant (§3.2).
    pub rm: Rc<RefCell<ResourceAccountant>>,
    /// The reliability manager: failure ledgers and quarantine (every
    /// abort is recorded here automatically by the wrapper).
    pub reliability: Rc<RefCell<ReliabilityManager>>,
    /// Kernel state reachable only through accessor functions.
    kv: Rc<RefCell<[u64; KV_SLOTS]>>,
    /// The graft-callable function table (§3.3).
    pub callable: Rc<CallableTable>,
    /// Lock handles exposed to grafts: handle index → lock id.
    lock_handles: Rc<RefCell<Vec<LockId>>>,
    /// Subgrafts invocable through `call_graft` (nested transactions).
    subgrafts: RefCell<Vec<Rc<RefCell<GraftInstance>>>>,
    /// Current graft-to-graft nesting depth.
    nest_depth: std::cell::Cell<u32>,
    /// Fault plane attached to every subsequently created instance's VM.
    fault: RefCell<Option<Rc<FaultPlane>>>,
    /// Trace plane shared with every subsequently created instance's VM
    /// and with the wrapper's lifecycle events.
    trace: RefCell<Option<Rc<TracePlane>>>,
    /// Metrics plane shared with every subsequently created instance's
    /// VM and with the wrapper's invocation brackets.
    metrics: RefCell<Option<Rc<MetricsPlane>>>,
    /// Profile plane shared with every subsequently created instance's
    /// VM (per-PC billing, call-graph capture) and with the wrapper's
    /// invocation spans.
    profile: RefCell<Option<Rc<ProfilePlane>>>,
    /// Watch plane fed by the wrapper's install/invoke/abort/quarantine
    /// events (sliding-window SLO evaluation; see `docs/WATCH.md`).
    watch: RefCell<Option<Rc<WatchPlane>>>,
}

impl GraftEngine {
    /// Creates an engine with fresh subsystems on `clock`.
    pub fn new(clock: Rc<VirtualClock>) -> Rc<GraftEngine> {
        let txn = Rc::new(RefCell::new(TxnManager::new(Rc::clone(&clock))));
        Rc::new(GraftEngine {
            clock,
            txn,
            rm: Rc::new(RefCell::new(ResourceAccountant::new())),
            reliability: Rc::new(RefCell::new(ReliabilityManager::new())),
            kv: Rc::new(RefCell::new([0; KV_SLOTS])),
            callable: Rc::new(hostfn::build_callable_table()),
            lock_handles: Rc::new(RefCell::new(Vec::new())),
            subgrafts: RefCell::new(Vec::new()),
            nest_depth: std::cell::Cell::new(0),
            fault: RefCell::new(None),
            trace: RefCell::new(None),
            metrics: RefCell::new(None),
            profile: RefCell::new(None),
            watch: RefCell::new(None),
        })
    }

    /// Attaches a fault plane to the engine: every graft VM created
    /// *after* this call visits [`vino_sim::FaultSite::VmTrap`] on each
    /// interpreted instruction. (Subsystem sites — disk, locks, rm,
    /// loader — are wired by [`crate::Kernel::attach_fault_plane`].)
    pub fn set_fault_plane(&self, plane: Rc<FaultPlane>) {
        *self.fault.borrow_mut() = Some(plane);
    }

    /// The attached fault plane, if any.
    pub fn fault_plane(&self) -> Option<Rc<FaultPlane>> {
        self.fault.borrow().clone()
    }

    /// Attaches a trace plane to the engine: every graft instance
    /// created *after* this call traces its VM windows and SFI checks,
    /// and every wrapper invocation emits `graft.*` lifecycle events
    /// plus a flight-recorder post-mortem on abort. (Subsystem planes —
    /// fs, txn, rm, reliability — are wired by
    /// [`crate::Kernel::attach_trace_plane`].)
    pub fn set_trace_plane(&self, plane: Rc<TracePlane>) {
        *self.trace.borrow_mut() = Some(plane);
    }

    /// The attached trace plane, if any.
    pub fn trace_plane(&self) -> Option<Rc<TracePlane>> {
        self.trace.borrow().clone()
    }

    /// Attaches a metrics plane to the engine: every graft instance
    /// created *after* this call counts its VM activity and attributes
    /// instruction charges, and every wrapper invocation is bracketed
    /// into the per-graft overhead-attribution ledger. (Subsystem
    /// planes — fs, txn, rm, reliability — are wired by
    /// [`crate::Kernel::attach_metrics_plane`].)
    pub fn set_metrics_plane(&self, plane: Rc<MetricsPlane>) {
        *self.metrics.borrow_mut() = Some(plane);
    }

    /// The attached metrics plane, if any.
    pub fn metrics_plane(&self) -> Option<Rc<MetricsPlane>> {
        self.metrics.borrow().clone()
    }

    /// Attaches a profile plane to the engine: every graft instance
    /// created *after* this call bills each retired instruction to its
    /// (graft, function, pc) key and captures its local call graph, and
    /// every wrapper invocation opens a span in the invocation tree.
    /// (Subsystem planes — fs, txn, rm — are wired by
    /// [`crate::Kernel::attach_profile_plane`].)
    pub fn set_profile_plane(&self, plane: Rc<ProfilePlane>) {
        *self.profile.borrow_mut() = Some(plane);
    }

    /// The attached profile plane, if any.
    pub fn profile_plane(&self) -> Option<Rc<ProfilePlane>> {
        self.profile.borrow().clone()
    }

    /// Attaches a watch plane to the engine: every graft install,
    /// invocation (with its cycle cost), abort and quarantine trip
    /// recorded *after* this call feeds the plane's sliding windows,
    /// keyed by the installer who vouched for the graft (the
    /// accountant's blame target — the same principal admission
    /// control gates). (Subsystem windows —
    /// journal occupancy, RX shed, lock time-outs — are wired by
    /// [`crate::Kernel::attach_watch_plane`].) Recording never charges
    /// the virtual clock, so attaching a watch plane changes no
    /// timings.
    pub fn set_watch_plane(&self, plane: Rc<WatchPlane>) {
        *self.watch.borrow_mut() = Some(plane);
    }

    /// The attached watch plane, if any.
    pub fn watch_plane(&self) -> Option<Rc<WatchPlane>> {
        self.watch.borrow().clone()
    }

    /// Registers a lockable kernel object and exposes it to grafts as a
    /// small-integer handle (grafts never see raw lock ids).
    pub fn register_lock(&self, class: LockClass) -> (u64, LockId) {
        let id = self.txn.borrow_mut().create_lock(class);
        let mut handles = self.lock_handles.borrow_mut();
        handles.push(id);
        ((handles.len() - 1) as u64, id)
    }

    /// Reads a kernel-state slot (host-side, no checks).
    pub fn kv_read(&self, slot: usize) -> u64 {
        self.kv.borrow()[slot]
    }

    /// Writes a kernel-state slot (host-side, no undo — kernel code).
    pub fn kv_write(&self, slot: usize, v: u64) {
        self.kv.borrow_mut()[slot] = v;
    }

    fn lock_for_handle(&self, handle: u64) -> Option<LockId> {
        self.lock_handles.borrow().get(handle as usize).copied()
    }

    /// Registers an installed graft as a subgraft other grafts may
    /// invoke through the `call_graft` kernel function, returning its
    /// handle. The callee runs nested inside the caller's transaction
    /// stack (§3.1).
    pub fn register_subgraft(&self, graft: Rc<RefCell<GraftInstance>>) -> u64 {
        let mut subs = self.subgrafts.borrow_mut();
        subs.push(graft);
        (subs.len() - 1) as u64
    }

    fn subgraft(&self, handle: u64) -> Option<Rc<RefCell<GraftInstance>>> {
        self.subgrafts.borrow().get(handle as usize).cloned()
    }

    /// Fetches a registered subgraft by handle (inspection/testing).
    pub fn subgraft_handle_for_tests(&self, handle: u64) -> Option<Rc<RefCell<GraftInstance>>> {
        self.subgraft(handle)
    }
}

impl fmt::Debug for GraftEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GraftEngine").finish_non_exhaustive()
    }
}

/// The per-invocation kernel interface handed to the interpreter.
///
/// Collects the graft's side-band outputs (submitted read-ahead extents,
/// trace log) so adapters can consume them after the run.
pub struct KernelHost {
    engine: Rc<GraftEngine>,
    thread: ThreadId,
    principal: PrincipalId,
    /// Extents submitted through `ra_submit`.
    pub extents: Vec<(u64, u64)>,
    /// Values logged through `log`.
    pub log: Vec<u64>,
}

impl KernelHost {
    /// Creates a host context for one invocation.
    pub fn new(engine: Rc<GraftEngine>, thread: ThreadId, principal: PrincipalId) -> KernelHost {
        KernelHost { engine, thread, principal, extents: Vec::new(), log: Vec::new() }
    }
}

impl KernelApi for KernelHost {
    fn host_call(
        &mut self,
        id: HostFnId,
        args: [u64; 4],
        mem: &mut AddressSpace,
    ) -> Result<u64, Trap> {
        match id {
            hostfn::LOCK => {
                let lock = self
                    .engine
                    .lock_for_handle(args[0])
                    .ok_or(Trap::HostError { code: errcode::BAD_LOCK })?;
                let (ok, _events) =
                    self.engine.txn.borrow_mut().lock_blocking(lock, self.thread, 3);
                if ok {
                    Ok(1)
                } else {
                    Err(Trap::HostError { code: errcode::LOCK_TIMEOUT })
                }
            }
            hostfn::UNLOCK => {
                let lock = self
                    .engine
                    .lock_for_handle(args[0])
                    .ok_or(Trap::HostError { code: errcode::BAD_LOCK })?;
                self.engine.txn.borrow_mut().unlock(lock, self.thread);
                Ok(0)
            }
            hostfn::RA_SUBMIT => {
                self.extents.push((args[0], args[1]));
                Ok(0)
            }
            hostfn::KALLOC => {
                let bytes = args[0];
                let mut rm = self.engine.rm.borrow_mut();
                rm.charge(self.principal, ResourceKind::KernelHeap, bytes)
                    .map_err(|_| Trap::HostError { code: errcode::NOMEM })?;
                drop(rm);
                // The allocation is undone if the transaction aborts.
                let rm = Rc::clone(&self.engine.rm);
                let principal = self.principal;
                let _ = self.engine.txn.borrow_mut().log_undo(
                    self.thread,
                    "kalloc",
                    Cycles(60),
                    move || rm.borrow_mut().release(principal, ResourceKind::KernelHeap, bytes),
                );
                Ok(1)
            }
            hostfn::KFREE => {
                self.engine.rm.borrow_mut().release(
                    self.principal,
                    ResourceKind::KernelHeap,
                    args[0],
                );
                Ok(0)
            }
            hostfn::KV_SET => {
                let slot = args[0] as usize;
                if slot >= KV_SLOTS {
                    return Err(Trap::HostError { code: errcode::BAD_SLOT });
                }
                // Accessor-function protocol (§3.1): mutate, then push
                // the reversing operation onto the undo call stack.
                let old = self.engine.kv.borrow()[slot];
                self.engine.kv.borrow_mut()[slot] = args[1];
                let kv = Rc::clone(&self.engine.kv);
                let _ = self.engine.txn.borrow_mut().log_undo(
                    self.thread,
                    "kv_set",
                    Cycles(60),
                    move || kv.borrow_mut()[slot] = old,
                );
                Ok(0)
            }
            hostfn::KV_GET => {
                let slot = args[0] as usize;
                if slot >= KV_SLOTS {
                    return Err(Trap::HostError { code: errcode::BAD_SLOT });
                }
                Ok(self.engine.kv.borrow()[slot])
            }
            hostfn::SHARED_BASE => Ok(mem.seg_base()),
            hostfn::LOG => {
                self.log.push(args[0]);
                Ok(0)
            }
            hostfn::CALL_GRAFT => {
                // Graft-to-graft invocation: the callee runs on the
                // caller's thread, so its wrapper transaction nests
                // inside the caller's (§3.1). A callee abort is
                // surfaced as the CALLEE_ABORTED sentinel and does NOT
                // abort the caller.
                let sub = self
                    .engine
                    .subgraft(args[0])
                    .ok_or(Trap::HostError { code: errcode::BAD_GRAFT })?;
                let Ok(mut callee) = sub.try_borrow_mut() else {
                    return Err(Trap::HostError { code: errcode::GRAFT_RECURSION });
                };
                if self.engine.nest_depth.get() >= MAX_NEST_DEPTH {
                    return Err(Trap::HostError { code: errcode::NEST_TOO_DEEP });
                }
                self.engine.nest_depth.set(self.engine.nest_depth.get() + 1);
                let saved = callee.thread();
                callee.set_thread(self.thread);
                let out = callee.invoke([args[1], args[2], args[3], 0]);
                callee.set_thread(saved);
                self.engine.nest_depth.set(self.engine.nest_depth.get() - 1);
                match out {
                    InvokeOutcome::Ok { result, .. } => Ok(result),
                    InvokeOutcome::Aborted { .. } | InvokeOutcome::Dead => Ok(CALLEE_ABORTED),
                }
            }
            // Defence in depth: restricted functions refuse even if the
            // link/run-time checks were somehow bypassed.
            other if other.0 >= hostfn::FIRST_RESTRICTED => Err(Trap::ForbiddenCall { id: other }),
            other => Err(Trap::UnknownFunction { id: other }),
        }
    }

    fn is_callable(&self, id: HostFnId) -> bool {
        self.engine.callable.contains(id)
    }
}

/// Why an invocation was aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbortedWhy {
    /// The graft trapped (memory fault, forbidden call, host error...).
    Trap(Trap),
    /// The graft exceeded its CPU-slice budget — the §2.5 covert
    /// denial-of-service detector for grafts the kernel is waiting on.
    CpuHog,
    /// A fired lock time-out aborted the wrapper transaction while the
    /// graft was still running (Rule 9: a waiter's forward progress
    /// trumps the holder). The wrapper observes the theft at its next
    /// pump or at commit and finishes the unload.
    LockTimeout,
    /// The caller requested an abort-instead-of-commit run (benchmarks
    /// measuring the Table 3–6 "abort path").
    Requested,
}

/// The result of one graft invocation.
#[derive(Debug)]
pub enum InvokeOutcome {
    /// The graft halted and the transaction committed.
    Ok {
        /// The graft's return value (from `halt`).
        result: u64,
        /// Extents it submitted via `ra_submit`.
        extents: Vec<(u64, u64)>,
        /// Its debug trace.
        log: Vec<u64>,
    },
    /// The transaction was aborted; the graft is now dead (unloaded).
    Aborted {
        /// Why.
        why: AbortedWhy,
        /// The transaction manager's abort report.
        report: AbortReport,
    },
    /// The graft was already unloaded; the caller should run the
    /// default function.
    Dead,
}

impl InvokeOutcome {
    /// The halt value, if the invocation committed.
    pub fn result(&self) -> Option<u64> {
        match self {
            InvokeOutcome::Ok { result, .. } => Some(*result),
            _ => None,
        }
    }
}

/// The result of one batched invocation: a single wrapper transaction
/// covering up to `count` back-to-back runs of the graft function
/// (§4.1.3's per-invocation overhead argument — the begin/commit
/// envelope is paid once per batch instead of once per run).
#[derive(Debug)]
pub enum BatchOutcome {
    /// Every run halted and the whole batch committed; `results[i]` is
    /// run `i`'s halt value.
    Ok {
        /// Halt values, one per run, in run order.
        results: Vec<u64>,
    },
    /// Run `failed_at` misbehaved. The batch is one atomicity domain:
    /// the wrapper transaction was aborted, every earlier run's effects
    /// were undone, and the graft is now dead (§3.6).
    Aborted {
        /// Index of the run that misbehaved.
        failed_at: usize,
        /// Why.
        why: AbortedWhy,
        /// The transaction manager's abort report.
        report: AbortReport,
    },
    /// The graft was already unloaded; the caller should run the
    /// default function for the whole batch.
    Dead,
}

/// Commit-or-abort mode for an invocation (benchmarks measure both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitMode {
    /// Commit on successful halt (the normal wrapper).
    Commit,
    /// Abort at the end even on success (the Table 3–6 "abort path").
    AbortAtEnd,
}

/// Per-instance counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvokeStats {
    /// Invocations attempted.
    pub invocations: u64,
    /// Committed runs.
    pub commits: u64,
    /// Aborted runs.
    pub aborts: u64,
    /// Timeslice preemptions across all runs.
    pub preemptions: u64,
}

/// An installed graft: program, persistent VM context, principal.
pub struct GraftInstance {
    /// Graft name (from the signed image).
    pub name: String,
    engine: Rc<GraftEngine>,
    program: Program,
    vm: Vm,
    thread: ThreadId,
    /// The graft's resource principal (zero limits at install; §3.2).
    pub principal: PrincipalId,
    /// The principal the watch plane blames for this graft's behaviour:
    /// the installer who vouched for it (the accountant's
    /// `blame_target`), resolved once at install. Admission control
    /// gates installs by installer, so watch blame must land there too.
    blame: PrincipalId,
    dead: bool,
    /// Timeslices a single invocation may consume before the kernel
    /// declares it a CPU hog and aborts (§2.5's forward-progress
    /// detector for grafts in the kernel's path).
    pub max_slices: u32,
    stats: InvokeStats,
    /// Interned trace tag for this graft's name (if a plane is wired).
    tag: Option<GraftTag>,
    /// Interned metrics tag for this graft's name (if a plane is wired).
    mtag: Option<MetricTag>,
    /// Interned profile tag for this graft's name (if a plane is wired).
    ptag: Option<ProfTag>,
    /// Clock reading at the start of the current invocation, so the
    /// watch plane can be fed the invocation's cycle cost on both the
    /// commit and the abort exits.
    invoke_started: Cycles,
    /// The trace plane's causal context before the current invocation
    /// span was installed, restored on both the commit and abort exits.
    prev_ctx: CauseCtx,
}

impl GraftInstance {
    /// Builds an instance from its parts (normally done by the loader).
    pub fn new(
        engine: Rc<GraftEngine>,
        program: Program,
        mem: AddressSpace,
        thread: ThreadId,
        principal: PrincipalId,
    ) -> GraftInstance {
        let mut vm = Vm::new(mem);
        if let Some(plane) = engine.fault_plane() {
            vm.set_fault_plane(plane);
        }
        // Intern the graft name once at install time (the only point a
        // trace event may allocate) and announce the install.
        let tag = engine.trace_plane().map(|tp| {
            vm.set_trace_plane(Rc::clone(&tp));
            let tag = tp.tag(&program.name);
            tp.emit(TraceEvent::GraftInstall { graft: tag });
            tag
        });
        // Same install-time interning for the metrics plane.
        let mtag = engine.metrics_plane().map(|mp| {
            vm.set_metrics_plane(Rc::clone(&mp));
            let mtag = mp.tag(&program.name);
            mp.mark_install(mtag);
            mtag
        });
        // And for the profile plane, which also pre-sizes the per-PC
        // arrays to the program length so the hot path never allocates.
        let ptag = engine.profile_plane().map(|pp| {
            let ptag = pp.tag(&program.name);
            pp.register_program(ptag, program.instrs.len());
            vm.set_profile_plane(Rc::clone(&pp), ptag);
            ptag
        });
        // Watch plane: count the install and pre-create the blamed
        // principal's window slot now, while allocation is permitted.
        let blame = engine.rm.borrow().blame_target(principal);
        if let Some(wp) = engine.watch_plane() {
            wp.touch_principal(blame.0);
            wp.observe_install(blame.0);
        }
        GraftInstance {
            name: program.name.clone(),
            engine,
            program,
            vm,
            thread,
            principal,
            blame,
            dead: false,
            max_slices: 16,
            stats: InvokeStats::default(),
            tag,
            mtag,
            ptag,
            invoke_started: Cycles::ZERO,
            prev_ctx: CauseCtx::NONE,
        }
    }

    fn emit(&self, ev: TraceEvent) {
        if let Some(tp) = self.engine.trace.borrow().as_ref() {
            tp.emit(ev);
        }
    }

    /// Opens the invocation's causal span — an event origin: the span
    /// is minted as a child of whatever context is in force (so a graft
    /// invoked from a packet batch chains to the packet's span) and
    /// installed as the plane's current context. Every event the
    /// invocation emits, on any subsystem, inherits it.
    fn begin_invoke_span(&mut self) {
        if let Some(tp) = self.engine.trace_plane() {
            let ctx = tp.mint_span(tp.ctx().span);
            self.prev_ctx = tp.set_ctx(ctx);
        }
    }

    /// Closes the invocation's causal span, restoring the context that
    /// was in force before it. Both exits (commit and abort) land here.
    fn end_invoke_span(&mut self) {
        if let Some(tp) = self.engine.trace_plane() {
            tp.set_ctx(self.prev_ctx);
        }
    }

    /// True once the graft has been forcibly unloaded (§3.6).
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Counters.
    pub fn stats(&self) -> InvokeStats {
        self.stats
    }

    /// The graft's memory, for host-side shared-buffer setup.
    pub fn mem(&mut self) -> &mut AddressSpace {
        &mut self.vm.mem
    }

    /// Read-only view of the graft's memory.
    pub fn mem_ref(&self) -> &AddressSpace {
        &self.vm.mem
    }

    /// The thread this graft runs on.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Rebinds the graft to a thread (event dispatch workers and
    /// nested graft-to-graft calls run the graft on the invoking
    /// thread).
    pub fn set_thread(&mut self, thread: ThreadId) {
        self.thread = thread;
    }

    /// Reinstalls a dead graft (a fresh install in the paper's model;
    /// provided so benchmarks can measure repeated abort paths without
    /// rebuilding shared-buffer state).
    pub fn revive(&mut self) {
        self.dead = false;
    }

    /// Forcibly unloads the graft from outside an invocation — the
    /// discipline path for misbehaviour that the wrapper cannot see
    /// from inside one transaction (e.g. the packet plane's
    /// steer-cycle tolerance). The failure is recorded in the
    /// reliability ledger, so repeated condemnation quarantines the
    /// graft name exactly like in-invocation aborts. The caller owns
    /// any trace/metrics emission for the event that triggered it.
    pub fn condemn(&mut self) {
        if self.dead {
            return;
        }
        self.dead = true;
        let verdict = self.engine.reliability.borrow_mut().record_abort(
            &self.name,
            reliability::FailureKind::OtherTrap,
            self.engine.clock.now(),
        );
        if let reliability::Verdict::Quarantined { .. } = verdict {
            if let Some(wp) = self.engine.watch_plane() {
                wp.observe_quarantine(self.blame.0);
            }
        }
    }

    /// Feeds the finished invocation's cycle cost into the watch
    /// plane's p99 window (both exits call this: commit directly,
    /// abort via [`fail`](Self::fail)).
    fn observe_watch_invoke(&self) {
        if let Some(wp) = self.engine.watch_plane() {
            let cost = self.engine.clock.now() - self.invoke_started;
            wp.observe_invoke(self.blame.0, cost);
        }
    }

    /// Invokes the graft through the full wrapper: transaction begin,
    /// fuel-bounded execution, commit/abort, forcible unload on
    /// misbehaviour.
    pub fn invoke(&mut self, args: [u64; 4]) -> InvokeOutcome {
        self.invoke_mode(args, CommitMode::Commit)
    }

    /// [`GraftInstance::invoke`] with an explicit commit mode.
    pub fn invoke_mode(&mut self, args: [u64; 4], mode: CommitMode) -> InvokeOutcome {
        if self.dead {
            if let Some(tag) = self.tag {
                self.emit(TraceEvent::FallbackServed { graft: tag });
            }
            if let Some(mtag) = self.mtag {
                if let Some(mp) = self.engine.metrics_plane() {
                    mp.mark_fallback(mtag);
                }
            }
            if self.ptag.is_some() {
                if let Some(pp) = self.engine.profile_plane() {
                    pp.mark_fallback();
                }
            }
            return InvokeOutcome::Dead;
        }
        self.stats.invocations += 1;
        self.invoke_started = self.engine.clock.now();
        self.begin_invoke_span();
        if let Some(tag) = self.tag {
            self.emit(TraceEvent::GraftInvoke { graft: tag });
        }
        if let Some(mtag) = self.mtag {
            if let Some(mp) = self.engine.metrics_plane() {
                mp.begin_invocation(mtag);
            }
        }
        if let Some(ptag) = self.ptag {
            if let Some(pp) = self.engine.profile_plane() {
                pp.begin_invocation(ptag);
            }
        }
        let engine = Rc::clone(&self.engine);
        let txn_id = engine.txn.borrow_mut().begin(self.thread);
        self.vm.reset();
        self.vm.regs[1] = args[0];
        self.vm.regs[2] = args[1];
        self.vm.regs[3] = args[2];
        self.vm.regs[4] = args[3];
        let mut host = KernelHost::new(Rc::clone(&engine), self.thread, self.principal);
        let mut slices = 0u32;
        loop {
            let mut fuel = vino_sched::Scheduler::timeslice_fuel();
            match self.vm.run(&self.program, &mut host, &engine.clock, &mut fuel) {
                Exit::Halted(result) => {
                    return match mode {
                        CommitMode::Commit => {
                            let committed = engine.txn.borrow_mut().commit(self.thread).is_ok();
                            if committed {
                                self.stats.commits += 1;
                                if let Some(tag) = self.tag {
                                    self.emit(TraceEvent::GraftCommit { graft: tag });
                                }
                                if self.mtag.is_some() {
                                    if let Some(mp) = self.engine.metrics_plane() {
                                        mp.end_invocation(true);
                                    }
                                }
                                if self.ptag.is_some() {
                                    if let Some(pp) = self.engine.profile_plane() {
                                        pp.end_invocation(true);
                                    }
                                }
                                self.observe_watch_invoke();
                                self.end_invoke_span();
                                InvokeOutcome::Ok { result, extents: host.extents, log: host.log }
                            } else {
                                // A fired lock time-out stole the wrapper
                                // transaction mid-run; the work is already
                                // undone, so the invocation is an abort.
                                let report = self.stolen_report(txn_id);
                                self.fail(AbortedWhy::LockTimeout, report)
                            }
                        }
                        CommitMode::AbortAtEnd => {
                            let report = self.abort_wrapper(txn_id, AbortReason::Explicit);
                            self.fail(AbortedWhy::Requested, report)
                        }
                    };
                }
                Exit::Preempted => {
                    self.stats.preemptions += 1;
                    slices += 1;
                    // Preemption costs a switch pair (another thread ran).
                    engine.clock.charge(costs::CONTEXT_SWITCH);
                    engine.clock.charge(costs::CONTEXT_SWITCH);
                    // Other threads' lock time-outs fire while this graft
                    // is off-CPU; one of them may abort this wrapper's
                    // transaction (Rule 9).
                    engine.txn.borrow_mut().fire_due_timeouts();
                    if let Some(report) =
                        engine.txn.borrow_mut().take_forced_abort(self.thread, txn_id)
                    {
                        return self.fail(AbortedWhy::LockTimeout, report);
                    }
                    if slices >= self.max_slices {
                        let report = self.abort_wrapper(txn_id, AbortReason::Explicit);
                        return self.fail(AbortedWhy::CpuHog, report);
                    }
                }
                Exit::Trapped(trap) => {
                    // Resource-limit traps abort with the matching
                    // reason; everything else is a generic abort.
                    let reason = match trap {
                        Trap::HostError { code: errcode::NOMEM } => AbortReason::ResourceLimit,
                        Trap::HostError { code: errcode::LOCK_TIMEOUT } => {
                            AbortReason::LockTimeout(LockId(u64::MAX))
                        }
                        _ => AbortReason::Explicit,
                    };
                    let report = self.abort_wrapper(txn_id, reason);
                    return self.fail(AbortedWhy::Trap(trap), report);
                }
            }
        }
    }

    /// Invokes the graft `count` times under ONE wrapper transaction.
    ///
    /// `marshal(i, mem)` prepares the graft memory for run `i` (e.g.
    /// writes packet `i`'s header and payload into the segment) and
    /// returns the run's register arguments. The transaction envelope —
    /// begin, commit, the invocation metrics bracket and the `graft.*`
    /// lifecycle trace events — is paid once for the whole batch, which
    /// is the batched dispatcher's per-packet win. The batch is one
    /// atomicity domain: if any run traps, hogs the CPU or loses its
    /// locks, the whole batch aborts, every run's effects are undone
    /// and the graft is forcibly unloaded, exactly as a single-run
    /// abort.
    pub fn invoke_batch<F>(&mut self, count: usize, mut marshal: F) -> BatchOutcome
    where
        F: FnMut(usize, &mut AddressSpace) -> [u64; 4],
    {
        if self.dead {
            if let Some(tag) = self.tag {
                self.emit(TraceEvent::FallbackServed { graft: tag });
            }
            if let Some(mtag) = self.mtag {
                if let Some(mp) = self.engine.metrics_plane() {
                    mp.mark_fallback(mtag);
                }
            }
            if self.ptag.is_some() {
                if let Some(pp) = self.engine.profile_plane() {
                    pp.mark_fallback();
                }
            }
            return BatchOutcome::Dead;
        }
        if count == 0 {
            return BatchOutcome::Ok { results: Vec::new() };
        }
        self.stats.invocations += 1;
        self.invoke_started = self.engine.clock.now();
        self.begin_invoke_span();
        if let Some(tag) = self.tag {
            self.emit(TraceEvent::GraftInvoke { graft: tag });
        }
        if let Some(mtag) = self.mtag {
            if let Some(mp) = self.engine.metrics_plane() {
                mp.begin_invocation(mtag);
            }
        }
        if let Some(ptag) = self.ptag {
            if let Some(pp) = self.engine.profile_plane() {
                pp.begin_invocation(ptag);
            }
        }
        let engine = Rc::clone(&self.engine);
        let txn_id = engine.txn.borrow_mut().begin(self.thread);
        let mut host = KernelHost::new(Rc::clone(&engine), self.thread, self.principal);
        let mut results = Vec::with_capacity(count);
        for i in 0..count {
            self.vm.reset();
            let args = marshal(i, &mut self.vm.mem);
            self.vm.regs[1] = args[0];
            self.vm.regs[2] = args[1];
            self.vm.regs[3] = args[2];
            self.vm.regs[4] = args[3];
            let mut slices = 0u32;
            loop {
                let mut fuel = vino_sched::Scheduler::timeslice_fuel();
                match self.vm.run(&self.program, &mut host, &engine.clock, &mut fuel) {
                    Exit::Halted(result) => {
                        results.push(result);
                        break;
                    }
                    Exit::Preempted => {
                        self.stats.preemptions += 1;
                        slices += 1;
                        engine.clock.charge(costs::CONTEXT_SWITCH);
                        engine.clock.charge(costs::CONTEXT_SWITCH);
                        engine.txn.borrow_mut().fire_due_timeouts();
                        if let Some(report) =
                            engine.txn.borrow_mut().take_forced_abort(self.thread, txn_id)
                        {
                            let out = self.fail(AbortedWhy::LockTimeout, report);
                            return batch_aborted(i, out);
                        }
                        if slices >= self.max_slices {
                            let report = self.abort_wrapper(txn_id, AbortReason::Explicit);
                            let out = self.fail(AbortedWhy::CpuHog, report);
                            return batch_aborted(i, out);
                        }
                    }
                    Exit::Trapped(trap) => {
                        let reason = match trap {
                            Trap::HostError { code: errcode::NOMEM } => AbortReason::ResourceLimit,
                            Trap::HostError { code: errcode::LOCK_TIMEOUT } => {
                                AbortReason::LockTimeout(LockId(u64::MAX))
                            }
                            _ => AbortReason::Explicit,
                        };
                        let report = self.abort_wrapper(txn_id, reason);
                        let out = self.fail(AbortedWhy::Trap(trap), report);
                        return batch_aborted(i, out);
                    }
                }
            }
        }
        let committed = engine.txn.borrow_mut().commit(self.thread).is_ok();
        if committed {
            self.stats.commits += 1;
            if let Some(tag) = self.tag {
                self.emit(TraceEvent::GraftCommit { graft: tag });
            }
            if self.mtag.is_some() {
                if let Some(mp) = self.engine.metrics_plane() {
                    mp.end_invocation(true);
                }
            }
            if self.ptag.is_some() {
                if let Some(pp) = self.engine.profile_plane() {
                    pp.end_invocation(true);
                }
            }
            self.observe_watch_invoke();
            self.end_invoke_span();
            BatchOutcome::Ok { results }
        } else {
            // A fired lock time-out stole the wrapper transaction
            // between the last run and the commit.
            let report = self.stolen_report(txn_id);
            let out = self.fail(AbortedWhy::LockTimeout, report);
            batch_aborted(count - 1, out)
        }
    }

    /// Aborts the wrapper transaction; if a fired lock time-out already
    /// stole it (aborted this thread's innermost frame from under the
    /// running graft), recovers that abort's report instead of
    /// panicking on the missing frame.
    fn abort_wrapper(&self, txn: TxnId, reason: AbortReason) -> AbortReport {
        let mut mgr = self.engine.txn.borrow_mut();
        match mgr.abort(self.thread, reason) {
            Ok(report) => report,
            Err(_) => {
                drop(mgr);
                self.stolen_report(txn)
            }
        }
    }

    /// The abort report for a wrapper transaction that was stolen by a
    /// fired time-out, or a zero-cost placeholder if the theft predates
    /// report capture (e.g. the manager was rebuilt mid-run in a test).
    fn stolen_report(&self, txn: TxnId) -> AbortReport {
        self.engine.txn.borrow_mut().take_forced_abort(self.thread, txn).unwrap_or(AbortReport {
            txn,
            reason: AbortReason::LockTimeout(LockId(u64::MAX)),
            undo_ops: 0,
            locks_released: 0,
            cost: Cycles::ZERO,
            handoffs: Vec::new(),
        })
    }

    /// The single exit path for every aborted invocation: bumps the
    /// abort counter, forcibly unloads the graft (§3.6), bills the
    /// abort's cleanup cost to the blame chain (§3.2 — the installer
    /// ultimately pays for a misbehaving graft's cleanup), and records
    /// the failure in the engine's reliability ledger, which may
    /// quarantine the graft name against reinstallation.
    fn fail(&mut self, why: AbortedWhy, report: AbortReport) -> InvokeOutcome {
        self.stats.aborts += 1;
        self.dead = true;
        if self.mtag.is_some() {
            if let Some(mp) = self.engine.metrics_plane() {
                mp.end_invocation(false);
            }
        }
        if self.ptag.is_some() {
            if let Some(pp) = self.engine.profile_plane() {
                pp.end_invocation(false);
            }
        }
        let kind = reliability::classify(&why);
        self.engine.rm.borrow_mut().charge_blame(self.principal, report.cost.get());
        if let Some(tp) = self.engine.trace_plane() {
            let abort_kind = abort_kind_of(&why);
            if let Some(tag) = self.tag {
                tp.emit(TraceEvent::GraftAbort { graft: tag, kind: abort_kind });
            }
            // The flight recorder: snapshot the trace tail and the
            // abort's vital signs (abort path, allocation allowed).
            tp.record_post_mortem(
                &self.name,
                abort_kind,
                report.locks_released,
                report.undo_ops,
                report.cost,
            );
        }
        let verdict = self.engine.reliability.borrow_mut().record_abort(
            &self.name,
            kind,
            self.engine.clock.now(),
        );
        self.observe_watch_invoke();
        if let Some(wp) = self.engine.watch_plane() {
            wp.observe_abort(self.blame.0);
            if let reliability::Verdict::Quarantined { .. } = verdict {
                wp.observe_quarantine(self.blame.0);
            }
        }
        self.end_invoke_span();
        InvokeOutcome::Aborted { why, report }
    }
}

/// Re-shapes a single-run abort outcome into its batch counterpart.
fn batch_aborted(failed_at: usize, out: InvokeOutcome) -> BatchOutcome {
    match out {
        InvokeOutcome::Aborted { why, report } => BatchOutcome::Aborted { failed_at, why, report },
        _ => unreachable!("fail() always returns Aborted"),
    }
}

/// Maps the engine's abort cause onto the sim-level trace encoding.
pub fn abort_kind_of(why: &AbortedWhy) -> AbortKind {
    match why {
        AbortedWhy::Trap(_) => AbortKind::Trap,
        AbortedWhy::CpuHog => AbortKind::CpuHog,
        AbortedWhy::LockTimeout => AbortKind::LockTimeout,
        AbortedWhy::Requested => AbortKind::Requested,
    }
}

impl fmt::Debug for GraftInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GraftInstance")
            .field("name", &self.name)
            .field("dead", &self.dead)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vino_rm::Limits;
    use vino_vm::asm::assemble;
    use vino_vm::mem::Protection;

    const T: ThreadId = ThreadId(7);

    fn instance(src: &str) -> GraftInstance {
        let engine = GraftEngine::new(VirtualClock::new());
        let prog = assemble("test-graft", src, &hostfn::symbols()).unwrap();
        let principal = engine.rm.borrow_mut().create_graft_principal();
        let mem = AddressSpace::new(4096, 1024, Protection::Sfi);
        GraftInstance::new(engine, prog, mem, T, principal)
    }

    #[test]
    fn null_graft_commits() {
        let mut g = instance("halt r0");
        match g.invoke([0; 4]) {
            InvokeOutcome::Ok { result, .. } => assert_eq!(result, 0),
            other => panic!("expected Ok, got {other:?}"),
        }
        assert_eq!(g.stats().commits, 1);
        assert!(!g.is_dead());
        // Wrapper envelope charged begin + commit.
        let t = g.engine.txn.borrow().stats();
        assert_eq!(t.begins, 1);
        assert_eq!(t.commits, 1);
    }

    #[test]
    fn args_arrive_in_registers() {
        let mut g = instance("add r0, r1, r2\nhalt r0");
        assert_eq!(g.invoke([30, 12, 0, 0]).result(), Some(42));
    }

    #[test]
    fn kv_accessor_undone_on_abort() {
        // The graft writes kernel state through the accessor, then
        // traps; the undo stack must restore the old value.
        let mut g = instance(
            "
            const r1, 5       ; slot
            const r2, 99      ; value
            call $kv_set
            const r3, 0
            div r0, r2, r3    ; trap: divide by zero
            halt r0
            ",
        );
        g.engine.kv_write(5, 11);
        match g.invoke([0; 4]) {
            InvokeOutcome::Aborted { why: AbortedWhy::Trap(Trap::DivByZero), report } => {
                assert_eq!(report.undo_ops, 1);
            }
            other => panic!("expected trap abort, got {other:?}"),
        }
        assert_eq!(g.engine.kv_read(5), 11, "kernel state restored");
        assert!(g.is_dead(), "graft forcibly unloaded after abort");
        assert!(matches!(g.invoke([0; 4]), InvokeOutcome::Dead));
    }

    #[test]
    fn kv_accessor_persists_on_commit() {
        let mut g = instance(
            "
            const r1, 3
            const r2, 77
            call $kv_set
            halt r0
            ",
        );
        g.invoke([0; 4]);
        assert_eq!(g.engine.kv_read(3), 77);
    }

    #[test]
    fn kv_bad_slot_traps() {
        let mut g = instance(
            "
            const r1, 9999
            call $kv_get
            halt r0
            ",
        );
        match g.invoke([0; 4]) {
            InvokeOutcome::Aborted { why: AbortedWhy::Trap(t), .. } => {
                assert_eq!(t, Trap::HostError { code: errcode::BAD_SLOT });
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn resource_limit_denies_allocation() {
        // Zero-limit graft: any allocation must fail and abort (§3.2).
        let mut g = instance(
            "
            const r1, 4096
            call $kalloc
            halt r0
            ",
        );
        match g.invoke([0; 4]) {
            InvokeOutcome::Aborted { why: AbortedWhy::Trap(t), .. } => {
                assert_eq!(t, Trap::HostError { code: errcode::NOMEM });
            }
            other => panic!("{other:?}"),
        }
        assert!(g.is_dead());
    }

    #[test]
    fn allocation_within_transferred_limit_succeeds_and_unwinds() {
        let mut g = instance(
            "
            const r1, 4096
            call $kalloc
            const r1, 0
            const r2, 0
            div r0, r1, r2   ; trap after allocating
            halt r0
            ",
        );
        // Give the graft a budget (the install-time transfer).
        let installer = g
            .engine
            .rm
            .borrow_mut()
            .create_principal(Limits::of(&[(ResourceKind::KernelHeap, 8192)]));
        g.engine
            .rm
            .borrow_mut()
            .transfer(installer, g.principal, ResourceKind::KernelHeap, 8192)
            .unwrap();
        let used_before = g.engine.rm.borrow().used(g.principal, ResourceKind::KernelHeap);
        assert!(matches!(g.invoke([0; 4]), InvokeOutcome::Aborted { .. }));
        let used_after = g.engine.rm.borrow().used(g.principal, ResourceKind::KernelHeap);
        assert_eq!(used_before, used_after, "abort released the allocation");
    }

    #[test]
    fn infinite_loop_is_preempted_then_aborted() {
        // §2.2's `while(1);` — preemptible (Rule 1), and eventually the
        // kernel gives up on it.
        let mut g = instance("spin: jmp spin");
        g.max_slices = 3;
        match g.invoke([0; 4]) {
            InvokeOutcome::Aborted { why: AbortedWhy::CpuHog, .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(g.stats().preemptions, 3);
        assert!(g.is_dead());
    }

    #[test]
    fn lock_and_commit_releases() {
        let mut g = instance(
            "
            const r1, 0    ; lock handle 0
            call $lock
            halt r0
            ",
        );
        let (_handle, lock_id) = g.engine.register_lock(LockClass::Buffer);
        g.invoke([0; 4]);
        assert_eq!(g.engine.txn.borrow().lock_table().holder(lock_id), None);
    }

    #[test]
    fn lock_hog_times_out_for_other_threads() {
        // Graft takes the lock and commits... no: take lock inside the
        // graft then make another thread want it while the graft
        // transaction is still open — model by invoking with
        // AbortAtEnd? Simplest deterministic check: graft acquires the
        // lock, and while its txn is open (we re-enter via engine), a
        // second thread's blocking acquire aborts it.
        let engine = GraftEngine::new(VirtualClock::new());
        let (_h, lock_id) = engine.register_lock(LockClass::Buffer);
        let t_graft = ThreadId(1);
        let t_other = ThreadId(2);
        engine.txn.borrow_mut().begin(t_graft);
        engine.txn.borrow_mut().lock(lock_id, t_graft);
        // The graft now "spins forever" holding the lock. The other
        // thread's blocking acquire must time out the holder and win.
        let (ok, events) = engine.txn.borrow_mut().lock_blocking(lock_id, t_other, 3);
        assert!(ok, "Rule 9: other threads make progress");
        assert!(!events.is_empty());
        assert!(!engine.txn.borrow().in_txn(t_graft), "holder transaction aborted");
    }

    #[test]
    fn ra_submit_collected() {
        let mut g = instance(
            "
            const r1, 4096
            const r2, 8192
            call $ra_submit
            const r1, 0
            const r2, 4096
            call $ra_submit
            halt r0
            ",
        );
        match g.invoke([0; 4]) {
            InvokeOutcome::Ok { extents, .. } => {
                assert_eq!(extents, vec![(4096, 8192), (0, 4096)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn abort_at_end_mode() {
        let mut g = instance("halt r0");
        match g.invoke_mode([0; 4], CommitMode::AbortAtEnd) {
            InvokeOutcome::Aborted { why: AbortedWhy::Requested, .. } => {}
            other => panic!("{other:?}"),
        }
        assert!(g.is_dead());
        g.revive();
        assert!(matches!(g.invoke([0; 4]), InvokeOutcome::Ok { .. }));
    }

    #[test]
    fn batch_pays_one_transaction_envelope_for_n_runs() {
        let mut g = instance("add r0, r1, r2\nhalt r0");
        let out = g.invoke_batch(8, |i, _mem| [i as u64, 100, 0, 0]);
        match out {
            BatchOutcome::Ok { results } => {
                assert_eq!(results, (100..108).collect::<Vec<u64>>());
            }
            other => panic!("{other:?}"),
        }
        let t = g.engine.txn.borrow().stats();
        assert_eq!(t.begins, 1, "one begin for the whole batch");
        assert_eq!(t.commits, 1, "one commit for the whole batch");
        assert_eq!(g.stats().commits, 1);
    }

    #[test]
    fn batch_abort_undoes_every_earlier_run() {
        // Each run writes kv[run]; run 5 divides by zero. The whole
        // batch is one atomicity domain: all five earlier writes must
        // be undone.
        let mut g = instance(
            "
            mov r5, r1        ; slot = run index
            const r2, 1
            mov r1, r5
            call $kv_set
            const r3, 5
            bne r5, r3, fine
            const r3, 0
            div r0, r2, r3    ; run 5 traps
        fine:
            halt r0
            ",
        );
        match g.invoke_batch(8, |i, _mem| [i as u64, 0, 0, 0]) {
            BatchOutcome::Aborted { failed_at, why: AbortedWhy::Trap(Trap::DivByZero), report } => {
                assert_eq!(failed_at, 5);
                assert_eq!(report.undo_ops, 6, "five earlier writes plus run 5's own");
            }
            other => panic!("{other:?}"),
        }
        for slot in 0..6 {
            assert_eq!(g.engine.kv_read(slot), 0, "kv[{slot}] restored");
        }
        assert!(g.is_dead(), "batch abort forcibly unloads the graft");
        assert!(matches!(g.invoke_batch(4, |_, _| [0; 4]), BatchOutcome::Dead));
    }

    #[test]
    fn batch_cpu_hog_aborts_whole_batch() {
        let mut g = instance("spin: jmp spin");
        g.max_slices = 2;
        match g.invoke_batch(4, |_, _| [0; 4]) {
            BatchOutcome::Aborted { failed_at: 0, why: AbortedWhy::CpuHog, .. } => {}
            other => panic!("{other:?}"),
        }
        assert!(g.is_dead());
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut g = instance("halt r0");
        assert!(
            matches!(g.invoke_batch(0, |_, _| [0; 4]), BatchOutcome::Ok { results } if results.is_empty())
        );
        assert_eq!(g.engine.txn.borrow().stats().begins, 0);
    }

    #[test]
    fn shared_base_returns_segment() {
        let mut g = instance(
            "
            call $shared_base
            halt r0
            ",
        );
        let base = g.mem_ref().seg_base();
        assert_eq!(g.invoke([0; 4]).result(), Some(base));
    }

    #[test]
    fn log_collects_trace() {
        let mut g = instance(
            "
            const r1, 42
            call $log
            const r1, 43
            call $log
            halt r0
            ",
        );
        match g.invoke([0; 4]) {
            InvokeOutcome::Ok { log, .. } => assert_eq!(log, vec![42, 43]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wild_store_trap_aborts_and_unloads() {
        // Un-instrumented graft in an SFI space: the wild store faults,
        // the wrapper aborts, the graft dies. (Loader tests cover the
        // instrumented case where the store is silently confined.)
        let mut g = instance(
            "
            const r1, 0xC0000000
            storew r1, [r1+0]
            halt r0
            ",
        );
        match g.invoke([0; 4]) {
            InvokeOutcome::Aborted { why: AbortedWhy::Trap(Trap::Mem(_)), .. } => {}
            other => panic!("{other:?}"),
        }
        assert!(g.is_dead());
    }
}

//! The Figures 4/5 lock manager: policy encapsulation and its price.
//!
//! §6: "a conventional lock manager might implement the get_lock request
//! as shown in Figure 4. Unfortunately, this code encapsulates at least
//! two policy decisions. First, it assumes that any incoming lock
//! request can be granted if it does not conflict with any holders,
//! ignoring the locks on the wait list (e.g., it implements a reader
//! priority locking protocol). Second, it assumes that locks should be
//! appended to the waiters list, implying an ordering. A more general
//! implementation [Figure 5] encapsulates each policy decision at the
//! cost of a level of indirection at each decision point. On our system,
//! function calls typically cost approximately 35 cycles; these add up
//! remarkably quickly."
//!
//! Both managers implement the same semantics by default (reader
//! priority, FIFO queueing); the encapsulated one dispatches each
//! decision through a replaceable function, charging the 35-cycle call
//! cost per decision point — the quantity the F4/F5 ablation bench
//! measures.

use std::collections::HashMap;
use std::rc::Rc;

use vino_sim::{costs, Cycles, ThreadId, VirtualClock};

/// Lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Shared (read) access; compatible with other shared holders.
    Shared,
    /// Exclusive (write) access.
    Exclusive,
}

/// A queued lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Waiter {
    /// Requesting thread.
    pub thread: ThreadId,
    /// Requested mode.
    pub mode: Mode,
}

/// Result of a `get_lock` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GetLock {
    /// Lock granted.
    Granted,
    /// Request queued behind current holders/waiters.
    Queued,
}

#[derive(Debug, Default)]
struct LockRec {
    holders: Vec<Waiter>,
    waiters: Vec<Waiter>,
}

fn compatible(holders: &[Waiter], mode: Mode) -> bool {
    match mode {
        Mode::Shared => holders.iter().all(|h| h.mode == Mode::Shared),
        Mode::Exclusive => holders.is_empty(),
    }
}

/// The conventional lock manager (Figure 4): policies hard-coded.
#[derive(Debug, Default)]
pub struct SimpleLockMgr {
    locks: HashMap<u64, LockRec>,
}

impl SimpleLockMgr {
    /// An empty manager.
    pub fn new() -> SimpleLockMgr {
        SimpleLockMgr::default()
    }

    /// Figure 4's `get_lock`: grant when compatible with holders
    /// (reader priority — waiters are ignored), else append to waiters.
    pub fn get_lock(&mut self, clock: &VirtualClock, id: u64, w: Waiter) -> GetLock {
        // The body itself: a compare loop over holders.
        let rec = self.locks.entry(id).or_default();
        clock.charge(Cycles(costs::INSTR_CYCLES * (2 + rec.holders.len() as u64)));
        if compatible(&rec.holders, w.mode) {
            rec.holders.push(w);
            GetLock::Granted
        } else {
            rec.waiters.push(w); // Hard-coded: append (FIFO).
            GetLock::Queued
        }
    }

    /// Releases a hold and promotes compatible waiters in FIFO order.
    pub fn release(&mut self, clock: &VirtualClock, id: u64, thread: ThreadId) -> Vec<Waiter> {
        let rec = self.locks.entry(id).or_default();
        clock.charge(Cycles(costs::INSTR_CYCLES * 4));
        rec.holders.retain(|h| h.thread != thread);
        let mut promoted = Vec::new();
        while let Some(w) = rec.waiters.first().copied() {
            if compatible(&rec.holders, w.mode) {
                rec.waiters.remove(0);
                rec.holders.push(w);
                promoted.push(w);
            } else {
                break;
            }
        }
        promoted
    }

    /// Current holders of `id`.
    pub fn holders(&self, id: u64) -> Vec<Waiter> {
        self.locks.get(&id).map(|r| r.holders.clone()).unwrap_or_default()
    }

    /// Current waiters on `id`.
    pub fn waiters(&self, id: u64) -> Vec<Waiter> {
        self.locks.get(&id).map(|r| r.waiters.clone()).unwrap_or_default()
    }
}

/// A read-only view handed to grant policies.
#[derive(Debug)]
pub struct LockView<'a> {
    /// Current holders.
    pub holders: &'a [Waiter],
    /// Current waiters.
    pub waiters: &'a [Waiter],
}

/// The grant decision: may this request be granted *now*?
pub type GrantPolicy = Box<dyn Fn(&LockView<'_>, Waiter) -> bool>;

/// The queue decision: where in the waiter list does this request go?
/// Returns the insertion index.
pub type QueuePolicy = Box<dyn Fn(&[Waiter], Waiter) -> usize>;

/// The policy-encapsulated lock manager (Figure 5): every decision
/// dispatches through a replaceable function, one indirect call each.
pub struct PolicyLockMgr {
    locks: HashMap<u64, LockRec>,
    grant: GrantPolicy,
    queue: QueuePolicy,
    clock: Rc<VirtualClock>,
}

impl PolicyLockMgr {
    /// Reader-priority grant (Figure 4's hard-coded policy, as the
    /// default replaceable one).
    pub fn reader_priority() -> GrantPolicy {
        Box::new(|view, w| compatible(view.holders, w.mode))
    }

    /// Writer-priority grant: shared requests wait while a writer
    /// queues — the policy Figure 4 *cannot* express without surgery.
    pub fn writer_priority() -> GrantPolicy {
        Box::new(|view, w| {
            compatible(view.holders, w.mode)
                && (w.mode == Mode::Exclusive
                    || !view.waiters.iter().any(|x| x.mode == Mode::Exclusive))
        })
    }

    /// FIFO queueing (append).
    pub fn fifo() -> QueuePolicy {
        Box::new(|waiters, _| waiters.len())
    }

    /// Writers-first queueing: exclusive requests jump ahead of shared.
    pub fn writers_first() -> QueuePolicy {
        Box::new(|waiters, w| match w.mode {
            Mode::Exclusive => {
                waiters.iter().position(|x| x.mode == Mode::Shared).unwrap_or(waiters.len())
            }
            Mode::Shared => waiters.len(),
        })
    }

    /// Creates a manager with the given policies.
    pub fn new(clock: Rc<VirtualClock>, grant: GrantPolicy, queue: QueuePolicy) -> PolicyLockMgr {
        PolicyLockMgr { locks: HashMap::new(), grant, queue, clock }
    }

    /// Figure 5's `get_lock`: identical semantics to the simple manager
    /// under the default policies, but each decision is an indirect
    /// call costing [`costs::CALL_CYCLES`].
    pub fn get_lock(&mut self, id: u64, w: Waiter) -> GetLock {
        let rec = self.locks.entry(id).or_default();
        self.clock.charge(Cycles(costs::INSTR_CYCLES * (2 + rec.holders.len() as u64)));
        // Decision point 1: may we grant?
        self.clock.charge(Cycles(costs::CALL_CYCLES));
        let view = LockView { holders: &rec.holders, waiters: &rec.waiters };
        if (self.grant)(&view, w) {
            rec.holders.push(w);
            GetLock::Granted
        } else {
            // Decision point 2: where does the waiter go?
            self.clock.charge(Cycles(costs::CALL_CYCLES));
            let at = (self.queue)(&rec.waiters, w);
            rec.waiters.insert(at.min(rec.waiters.len()), w);
            GetLock::Queued
        }
    }

    /// Releases a hold and promotes waiters using the grant policy.
    pub fn release(&mut self, id: u64, thread: ThreadId) -> Vec<Waiter> {
        let rec = self.locks.entry(id).or_default();
        self.clock.charge(Cycles(costs::INSTR_CYCLES * 4));
        rec.holders.retain(|h| h.thread != thread);
        let mut promoted = Vec::new();
        while let Some(w) = rec.waiters.first().copied() {
            self.clock.charge(Cycles(costs::CALL_CYCLES));
            let view = LockView { holders: &rec.holders, waiters: &rec.waiters[1..] };
            if (self.grant)(&view, w) {
                rec.waiters.remove(0);
                rec.holders.push(w);
                promoted.push(w);
            } else {
                break;
            }
        }
        promoted
    }

    /// Current holders of `id`.
    pub fn holders(&self, id: u64) -> Vec<Waiter> {
        self.locks.get(&id).map(|r| r.holders.clone()).unwrap_or_default()
    }

    /// Current waiters on `id`.
    pub fn waiters(&self, id: u64) -> Vec<Waiter> {
        self.locks.get(&id).map(|r| r.waiters.clone()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);
    const T3: ThreadId = ThreadId(3);

    fn sh(t: ThreadId) -> Waiter {
        Waiter { thread: t, mode: Mode::Shared }
    }
    fn ex(t: ThreadId) -> Waiter {
        Waiter { thread: t, mode: Mode::Exclusive }
    }

    #[test]
    fn simple_reader_priority_semantics() {
        let clock = VirtualClock::new();
        let mut m = SimpleLockMgr::new();
        assert_eq!(m.get_lock(&clock, 1, sh(T1)), GetLock::Granted);
        assert_eq!(m.get_lock(&clock, 1, ex(T2)), GetLock::Queued);
        // Reader priority: a later shared request is granted even with
        // a writer waiting — the hard-coded policy of Figure 4.
        assert_eq!(m.get_lock(&clock, 1, sh(T3)), GetLock::Granted);
        // Release both readers: the writer is promoted.
        m.release(&clock, 1, T1);
        let promoted = m.release(&clock, 1, T3);
        assert_eq!(promoted, vec![ex(T2)]);
    }

    #[test]
    fn policy_mgr_default_matches_simple() {
        let clock = VirtualClock::new();
        let mut m = PolicyLockMgr::new(
            Rc::clone(&clock),
            PolicyLockMgr::reader_priority(),
            PolicyLockMgr::fifo(),
        );
        assert_eq!(m.get_lock(1, sh(T1)), GetLock::Granted);
        assert_eq!(m.get_lock(1, ex(T2)), GetLock::Queued);
        assert_eq!(m.get_lock(1, sh(T3)), GetLock::Granted);
        m.release(1, T1);
        let promoted = m.release(1, T3);
        assert_eq!(promoted, vec![ex(T2)]);
    }

    #[test]
    fn writer_priority_changes_behaviour() {
        // The point of encapsulation: replace the grant policy and the
        // same manager implements writer priority.
        let clock = VirtualClock::new();
        let mut m = PolicyLockMgr::new(
            Rc::clone(&clock),
            PolicyLockMgr::writer_priority(),
            PolicyLockMgr::fifo(),
        );
        assert_eq!(m.get_lock(1, sh(T1)), GetLock::Granted);
        assert_eq!(m.get_lock(1, ex(T2)), GetLock::Queued);
        // Under writer priority the new reader must wait.
        assert_eq!(m.get_lock(1, sh(T3)), GetLock::Queued);
        let promoted = m.release(1, T1);
        assert_eq!(promoted[0], ex(T2), "writer promoted first");
    }

    #[test]
    fn writers_first_queueing() {
        let clock = VirtualClock::new();
        let mut m = PolicyLockMgr::new(
            Rc::clone(&clock),
            PolicyLockMgr::reader_priority(),
            PolicyLockMgr::writers_first(),
        );
        m.get_lock(1, ex(T1));
        m.get_lock(1, sh(T2)); // Queued (conflicts with holder).
        m.get_lock(1, ex(T3)); // Queued, jumps ahead of the reader.
        assert_eq!(m.waiters(1), vec![ex(T3), sh(T2)]);
    }

    #[test]
    fn indirection_costs_35_cycles_per_decision() {
        // The §6 measurement: the encapsulated manager pays one 35-cycle
        // call per decision point over the conventional one.
        let c1 = VirtualClock::new();
        let mut simple = SimpleLockMgr::new();
        let t0 = c1.now();
        simple.get_lock(&c1, 1, sh(T1)); // Granted: 1 decision point.
        let simple_cost = c1.since(t0);

        let c2 = VirtualClock::new();
        let mut pol = PolicyLockMgr::new(
            Rc::clone(&c2),
            PolicyLockMgr::reader_priority(),
            PolicyLockMgr::fifo(),
        );
        let t0 = c2.now();
        pol.get_lock(1, sh(T1));
        let pol_cost = c2.since(t0);
        assert_eq!(
            pol_cost.get() - simple_cost.get(),
            costs::CALL_CYCLES,
            "granted path: one extra indirect call"
        );

        // Queued path: two decision points.
        let t0 = c1.now();
        simple.get_lock(&c1, 1, ex(T2));
        let simple_q = c1.since(t0);
        let t0 = c2.now();
        pol.get_lock(1, ex(T2));
        let pol_q = c2.since(t0);
        assert_eq!(pol_q.get() - simple_q.get(), 2 * costs::CALL_CYCLES);
    }
}

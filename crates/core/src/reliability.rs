//! The graft reliability manager: failure ledgers, quarantine, backoff.
//!
//! §3.6 unloads a misbehaving graft after one abort so "new invocations
//! of the call use normal kernel code". That alone turns every abort
//! into "fall back once"; a production kernel also has to *remember* —
//! otherwise an application can reinstall the same broken graft in a
//! tight loop and convert the abort path into a denial of service. This
//! module keeps a per-graft failure ledger (counts by failure kind), a
//! quarantine policy (after N aborts inside a virtual-clock window the
//! graft name is refused reinstall until an exponential-backoff deadline
//! passes), and leaves per-principal blame billing to
//! [`vino_rm::ResourceAccountant::charge_blame`] so the cost of every
//! abort lands on the installer that vouched for the graft (§3.2's
//! accounting, turned into a reliability signal).
//!
//! The engine records every abort here automatically
//! ([`crate::engine::GraftInstance::invoke`]); the kernel's install
//! paths consult [`ReliabilityManager::check_install`] before attaching
//! a graft (Rule 9: the kernel keeps serving regardless).

use std::collections::HashMap;
use std::rc::Rc;

use vino_sim::trace::{TraceEvent, TracePlane};
use vino_sim::Cycles;
use vino_vm::interp::Trap;

use crate::engine::{errcode, AbortedWhy};

/// Coarse classification of a graft failure for the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// Memory fault (unmapped, SFI violation, straddle).
    MemFault,
    /// Division or remainder by zero.
    DivByZero,
    /// Forbidden or wild indirect call (Rules 4/7).
    ForbiddenCall,
    /// An injected fault fired mid-execution ([`vino_sim::FaultSite::VmTrap`]).
    InjectedFault,
    /// Resource-limit denial (§3.2), genuine or injected.
    ResourceLimit,
    /// A lock time-out: the graft's own acquire timed out, or its
    /// transaction was aborted by a contending waiter's time-out.
    LockTimeout,
    /// Any other host-function error (bad slot, bad handle, nesting…).
    HostError,
    /// Any other trap (pc out of range, call-depth, ret without call…).
    OtherTrap,
    /// Exceeded the CPU-slice budget (§2.5's forward-progress detector).
    CpuHog,
    /// The caller requested abort-instead-of-commit (benchmark runs);
    /// counted in the ledger but never toward quarantine.
    Requested,
}

/// Maps an invocation's abort cause onto a [`FailureKind`].
pub fn classify(why: &AbortedWhy) -> FailureKind {
    match why {
        AbortedWhy::CpuHog => FailureKind::CpuHog,
        AbortedWhy::LockTimeout => FailureKind::LockTimeout,
        AbortedWhy::Requested => FailureKind::Requested,
        AbortedWhy::Trap(trap) => match trap {
            Trap::Mem(_) => FailureKind::MemFault,
            Trap::DivByZero => FailureKind::DivByZero,
            Trap::ForbiddenCall { .. } | Trap::WildJump { .. } => FailureKind::ForbiddenCall,
            Trap::Injected { .. } => FailureKind::InjectedFault,
            Trap::HostError { code: errcode::NOMEM } => FailureKind::ResourceLimit,
            Trap::HostError { code: errcode::LOCK_TIMEOUT } => FailureKind::LockTimeout,
            Trap::HostError { .. } => FailureKind::HostError,
            _ => FailureKind::OtherTrap,
        },
    }
}

/// When to quarantine and for how long.
#[derive(Debug, Clone, Copy)]
pub struct QuarantinePolicy {
    /// Aborts within [`window`](Self::window) that trip quarantine.
    pub threshold: u32,
    /// Virtual-clock window the threshold is counted over.
    pub window: Cycles,
    /// First quarantine duration; each subsequent episode doubles it.
    pub base_backoff: Cycles,
    /// Ceiling on the doubled backoff.
    pub max_backoff: Cycles,
}

impl Default for QuarantinePolicy {
    fn default() -> QuarantinePolicy {
        QuarantinePolicy {
            threshold: 3,
            window: Cycles::from_ms(1000),
            base_backoff: Cycles::from_ms(250),
            max_backoff: Cycles::from_ms(30_000),
        }
    }
}

/// Per-graft failure history (keyed by graft name).
#[derive(Debug, Clone, Default)]
pub struct GraftLedger {
    /// Aborts recorded, lifetime.
    pub aborts: u64,
    /// Aborts by failure kind.
    pub by_kind: HashMap<FailureKind, u64>,
    /// Quarantine episodes entered so far (drives the backoff doubling).
    pub episodes: u32,
    /// Active or expired quarantine deadline, if the graft was ever
    /// quarantined.
    pub quarantined_until: Option<Cycles>,
    /// Abort timestamps inside the current window (pruned on record).
    recent: Vec<Cycles>,
}

impl GraftLedger {
    /// Aborts recorded for one failure kind.
    pub fn count(&self, kind: FailureKind) -> u64 {
        self.by_kind.get(&kind).copied().unwrap_or(0)
    }
}

/// What recording an abort decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Below threshold; the abort was ledgered, nothing else happens.
    Noted,
    /// The graft crossed the threshold and is quarantined until the
    /// deadline: it is already forcibly unloaded (every abort unloads,
    /// §3.6), and reinstall is refused until `until`.
    Quarantined {
        /// Absolute virtual-clock deadline.
        until: Cycles,
    },
}

/// The kernel-side reliability manager. One per [`crate::GraftEngine`].
#[derive(Default)]
pub struct ReliabilityManager {
    policy: QuarantinePolicy,
    ledgers: HashMap<String, GraftLedger>,
    trace: Option<Rc<TracePlane>>,
    metrics: Option<Rc<vino_sim::metrics::MetricsPlane>>,
}

impl std::fmt::Debug for ReliabilityManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReliabilityManager")
            .field("policy", &self.policy)
            .field("ledgers", &self.ledgers)
            .finish_non_exhaustive()
    }
}

impl ReliabilityManager {
    /// A manager with the default policy.
    pub fn new() -> ReliabilityManager {
        ReliabilityManager::default()
    }

    /// The active policy.
    pub fn policy(&self) -> QuarantinePolicy {
        self.policy
    }

    /// Replaces the policy (existing ledgers keep their history).
    pub fn set_policy(&mut self, policy: QuarantinePolicy) {
        assert!(policy.threshold > 0, "a zero threshold would quarantine on install");
        self.policy = policy;
    }

    /// Wires a trace plane: quarantine trips emit `graft.quarantine`
    /// events (see `docs/TRACING.md`).
    pub fn set_trace_plane(&mut self, plane: Rc<TracePlane>) {
        self.trace = Some(plane);
    }

    /// Wires a metrics plane: quarantine trips bump the quarantine
    /// counter and stamp the graft's health state with the release
    /// deadline (see `docs/METRICS.md`).
    pub fn set_metrics_plane(&mut self, plane: Rc<vino_sim::metrics::MetricsPlane>) {
        self.metrics = Some(plane);
    }

    /// Records one abort of `graft` at virtual time `now`, returning
    /// whether the graft just entered quarantine.
    ///
    /// [`FailureKind::Requested`] aborts (benchmark abort-path runs) are
    /// ledgered but never counted toward quarantine — the caller asked
    /// for them, the graft did not misbehave.
    pub fn record_abort(&mut self, graft: &str, kind: FailureKind, now: Cycles) -> Verdict {
        let policy = self.policy;
        let ledger = self.ledgers.entry(graft.to_string()).or_default();
        ledger.aborts += 1;
        *ledger.by_kind.entry(kind).or_insert(0) += 1;
        if kind == FailureKind::Requested {
            return Verdict::Noted;
        }
        ledger.recent.push(now);
        ledger.recent.retain(|t| now.saturating_sub(*t) <= policy.window);
        if (ledger.recent.len() as u32) < policy.threshold {
            return Verdict::Noted;
        }
        // Threshold crossed: quarantine with exponential backoff.
        let shift = ledger.episodes.min(u64::BITS - 1);
        let backoff =
            Cycles(policy.base_backoff.get().saturating_mul(1u64 << shift)).min(policy.max_backoff);
        ledger.episodes += 1;
        ledger.recent.clear();
        let until = now + backoff;
        ledger.quarantined_until = Some(until);
        if let Some(tp) = &self.trace {
            let tag = tp.tag(graft);
            tp.emit(TraceEvent::GraftQuarantine { graft: tag, until: until.get() });
        }
        if let Some(mp) = &self.metrics {
            mp.quarantine(graft, until);
        }
        Verdict::Quarantined { until }
    }

    /// Install-time gate: `Err(until)` while `graft` is quarantined at
    /// virtual time `now`, `Ok` otherwise (including once the deadline
    /// has passed — quarantine expires by the clock, no amnesty call
    /// needed).
    pub fn check_install(&self, graft: &str, now: Cycles) -> Result<(), Cycles> {
        match self.ledgers.get(graft).and_then(|l| l.quarantined_until) {
            Some(until) if now < until => Err(until),
            _ => Ok(()),
        }
    }

    /// The failure ledger for `graft`, if it ever aborted.
    pub fn ledger(&self, graft: &str) -> Option<&GraftLedger> {
        self.ledgers.get(graft)
    }

    /// Total aborts recorded across all grafts.
    pub fn total_aborts(&self) -> u64 {
        self.ledgers.values().map(|l| l.aborts).sum()
    }

    /// Snapshots the policy and every failure ledger for a checkpoint.
    pub fn export_state(&self) -> ReliabilityState {
        ReliabilityState { policy: self.policy, ledgers: self.ledgers.clone() }
    }

    /// Replants a [`ReliabilityState`] capture, so a restored kernel
    /// enforces the same quarantines and backoff deadlines. Attached
    /// planes are untouched.
    pub fn restore_state(&mut self, st: &ReliabilityState) {
        self.policy = st.policy;
        self.ledgers = st.ledgers.clone();
    }
}

/// An opaque snapshot of the reliability manager's mutable state: the
/// quarantine policy and every graft's failure ledger. See
/// [`ReliabilityManager::export_state`].
#[derive(Debug, Clone)]
pub struct ReliabilityState {
    policy: QuarantinePolicy,
    ledgers: HashMap<String, GraftLedger>,
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: FailureKind = FailureKind::DivByZero;

    fn policy() -> QuarantinePolicy {
        QuarantinePolicy {
            threshold: 3,
            window: Cycles(1000),
            base_backoff: Cycles(500),
            max_backoff: Cycles(4000),
        }
    }

    fn mgr() -> ReliabilityManager {
        let mut m = ReliabilityManager::new();
        m.set_policy(policy());
        m
    }

    #[test]
    fn below_threshold_is_noted_and_installable() {
        let mut m = mgr();
        assert_eq!(m.record_abort("g", K, Cycles(10)), Verdict::Noted);
        assert_eq!(m.record_abort("g", K, Cycles(20)), Verdict::Noted);
        assert!(m.check_install("g", Cycles(30)).is_ok());
        assert_eq!(m.ledger("g").unwrap().aborts, 2);
        assert_eq!(m.ledger("g").unwrap().count(K), 2);
    }

    #[test]
    fn threshold_in_window_quarantines_with_base_backoff() {
        let mut m = mgr();
        m.record_abort("g", K, Cycles(10));
        m.record_abort("g", K, Cycles(20));
        let v = m.record_abort("g", K, Cycles(30));
        assert_eq!(v, Verdict::Quarantined { until: Cycles(530) });
        assert_eq!(m.check_install("g", Cycles(529)), Err(Cycles(530)));
        assert!(m.check_install("g", Cycles(530)).is_ok(), "deadline passed");
    }

    #[test]
    fn aborts_outside_window_do_not_accumulate() {
        let mut m = mgr();
        m.record_abort("g", K, Cycles(0));
        m.record_abort("g", K, Cycles(10));
        // 2000 is past the 1000-cycle window: earlier entries pruned.
        assert_eq!(m.record_abort("g", K, Cycles(2000)), Verdict::Noted);
        assert!(m.check_install("g", Cycles(2001)).is_ok());
    }

    #[test]
    fn backoff_doubles_per_episode_and_caps() {
        let mut m = mgr();
        let trip = |m: &mut ReliabilityManager, at: Cycles| {
            m.record_abort("g", K, at);
            m.record_abort("g", K, at);
            match m.record_abort("g", K, at) {
                Verdict::Quarantined { until } => until.saturating_sub(at),
                v => panic!("expected quarantine, got {v:?}"),
            }
        };
        assert_eq!(trip(&mut m, Cycles(0)), Cycles(500));
        assert_eq!(trip(&mut m, Cycles(10_000)), Cycles(1000));
        assert_eq!(trip(&mut m, Cycles(20_000)), Cycles(2000));
        assert_eq!(trip(&mut m, Cycles(30_000)), Cycles(4000));
        assert_eq!(trip(&mut m, Cycles(40_000)), Cycles(4000), "capped at max_backoff");
        assert_eq!(m.ledger("g").unwrap().episodes, 5);
    }

    #[test]
    fn requested_aborts_never_quarantine() {
        let mut m = mgr();
        for i in 0..100 {
            let v = m.record_abort("bench", FailureKind::Requested, Cycles(i));
            assert_eq!(v, Verdict::Noted);
        }
        assert!(m.check_install("bench", Cycles(100)).is_ok());
        assert_eq!(m.ledger("bench").unwrap().aborts, 100);
    }

    #[test]
    fn ledgers_are_per_graft() {
        let mut m = mgr();
        m.record_abort("a", K, Cycles(0));
        m.record_abort("a", K, Cycles(1));
        m.record_abort("a", K, Cycles(2));
        assert!(m.check_install("a", Cycles(3)).is_err());
        assert!(m.check_install("b", Cycles(3)).is_ok(), "other grafts unaffected");
        assert_eq!(m.total_aborts(), 3);
    }

    #[test]
    fn classify_covers_the_interesting_traps() {
        use vino_vm::isa::HostFnId;
        assert_eq!(classify(&AbortedWhy::CpuHog), FailureKind::CpuHog);
        assert_eq!(classify(&AbortedWhy::LockTimeout), FailureKind::LockTimeout);
        assert_eq!(classify(&AbortedWhy::Trap(Trap::DivByZero)), FailureKind::DivByZero);
        assert_eq!(
            classify(&AbortedWhy::Trap(Trap::Injected { pc: 3 })),
            FailureKind::InjectedFault
        );
        assert_eq!(
            classify(&AbortedWhy::Trap(Trap::HostError { code: errcode::NOMEM })),
            FailureKind::ResourceLimit
        );
        assert_eq!(
            classify(&AbortedWhy::Trap(Trap::HostError { code: errcode::LOCK_TIMEOUT })),
            FailureKind::LockTimeout
        );
        assert_eq!(
            classify(&AbortedWhy::Trap(Trap::HostError { code: errcode::BAD_SLOT })),
            FailureKind::HostError
        );
        assert_eq!(
            classify(&AbortedWhy::Trap(Trap::ForbiddenCall { id: HostFnId(9) })),
            FailureKind::ForbiddenCall
        );
        assert_eq!(classify(&AbortedWhy::Trap(Trap::RetWithoutCall)), FailureKind::OtherTrap);
    }
}

//! Bridges from installed grafts to the subsystem hook traits.
//!
//! Each adapter owns (a shared handle to) a [`GraftInstance`] and
//! implements one of the kernel's delegate traits by marshalling the
//! request into the graft's segment, invoking the graft through the
//! transactional wrapper, and unmarshalling the result. When the graft
//! aborts or is dead, every adapter falls back to the default kernel
//! behaviour — "the graft stub then calls the default function (i.e.,
//! the function that was replaced by the graft)" (§3.1).
//!
//! ## Shared-buffer layout (graft-segment byte offsets)
//!
//! | Offset | Contents |
//! |---|---|
//! | 0..16  | request header (per adapter, little-endian u32 fields) |
//! | 16..   | request payload (resident-page / runnable lists) |
//! | [`APP_BUF`].. | application-shared region (§4.1.2's pattern buffer, §4.2.2's pinned-page list) |

use std::cell::RefCell;
use std::rc::Rc;

use vino_fs::fs::{default_compute_ra, Extent, RaRequest, ReadAheadDelegate};
use vino_mem::{EvictionDelegate, PageId};
use vino_sched::{SchedSnapshot, ScheduleDelegate};
use vino_sim::ThreadId;

use crate::engine::{CommitMode, GraftInstance, InvokeOutcome};

/// Start of the application-shared region within a graft segment. The
/// application writes its hints here (predicted offsets, pinned pages);
/// the graft reads them under SFI.
pub const APP_BUF: usize = 1024;

/// A shared, inspectable handle to an installed graft.
pub type SharedGraft = Rc<RefCell<GraftInstance>>;

/// Wraps an instance for attachment to a subsystem hook.
pub fn share(instance: GraftInstance) -> SharedGraft {
    Rc::new(RefCell::new(instance))
}

// ---------------------------------------------------------------------------
// Read-ahead (§4.1).
// ---------------------------------------------------------------------------

/// Adapts a graft to the open-file `compute-ra` hook.
///
/// Request marshalling: header `{offset, len, sequential, file_size}`
/// as u32s at offsets 0/4/8/12 (plus high halves at 16/20 for large
/// files). The graft submits extents via the `ra_submit` kernel call.
pub struct RaGraftAdapter {
    /// The underlying instance (shared so callers can inspect it).
    pub instance: SharedGraft,
    /// Commit mode; `AbortAtEnd` is the benchmark "abort path" (the
    /// instance is revived after each aborted run so the measurement
    /// can repeat).
    pub mode: CommitMode,
}

impl RaGraftAdapter {
    /// A normally-committing adapter.
    pub fn new(instance: SharedGraft) -> RaGraftAdapter {
        RaGraftAdapter { instance, mode: CommitMode::Commit }
    }
}

impl ReadAheadDelegate for RaGraftAdapter {
    fn compute_ra(&mut self, req: &RaRequest) -> Vec<Extent> {
        let mut g = self.instance.borrow_mut();
        if g.is_dead() {
            return default_compute_ra(req);
        }
        {
            let mem = g.mem();
            mem.graft_write_u32(0, req.offset as u32);
            mem.graft_write_u32(4, req.len as u32);
            mem.graft_write_u32(8, req.sequential as u32);
            mem.graft_write_u32(12, req.file_size as u32);
            mem.graft_write_u32(16, (req.offset >> 32) as u32);
            mem.graft_write_u32(20, (req.file_size >> 32) as u32);
        }
        let out =
            g.invoke_mode([req.offset, req.len, req.sequential as u64, req.file_size], self.mode);
        if self.mode == CommitMode::AbortAtEnd {
            g.revive();
        }
        match out {
            InvokeOutcome::Ok { extents, .. } => {
                extents.into_iter().map(|(offset, len)| Extent { offset, len }).collect()
            }
            // Abort ⇒ forcibly unloaded ⇒ default policy (§3.6).
            InvokeOutcome::Aborted { .. } | InvokeOutcome::Dead => default_compute_ra(req),
        }
    }
}

// ---------------------------------------------------------------------------
// Page eviction (§4.2).
// ---------------------------------------------------------------------------

/// Adapts a graft to the per-VAS page-eviction hook.
///
/// Request marshalling: `victim` u32 at 0, `count` u32 at 4, resident
/// page ids u32 each from offset 8. Result: the halt value, interpreted
/// as a page id (the kernel re-verifies it regardless — §4.2.1).
pub struct EvictGraftAdapter {
    /// The underlying instance.
    pub instance: SharedGraft,
    /// Bound on the marshalled resident list (the kernel does not copy
    /// unbounded lists into a graft segment).
    pub max_pages: usize,
    /// Commit mode (see [`RaGraftAdapter::mode`]).
    pub mode: CommitMode,
}

impl EvictGraftAdapter {
    /// A normally-committing adapter.
    pub fn new(instance: SharedGraft) -> EvictGraftAdapter {
        EvictGraftAdapter { instance, max_pages: 1024, mode: CommitMode::Commit }
    }
}

impl EvictionDelegate for EvictGraftAdapter {
    fn choose(&mut self, victim: PageId, resident: &[PageId]) -> PageId {
        let mut g = self.instance.borrow_mut();
        if g.is_dead() {
            return victim;
        }
        let n = resident.len().min(self.max_pages);
        {
            let mem = g.mem();
            mem.graft_write_u32(0, victim.0 as u32);
            mem.graft_write_u32(4, n as u32);
            for (i, p) in resident.iter().take(n).enumerate() {
                mem.graft_write_u32(8 + 4 * i, p.0 as u32);
            }
        }
        let out = g.invoke_mode([victim.0, n as u64, 0, 0], self.mode);
        if self.mode == CommitMode::AbortAtEnd {
            g.revive();
        }
        match out {
            InvokeOutcome::Ok { result, .. } => PageId(result),
            InvokeOutcome::Aborted { .. } | InvokeOutcome::Dead => victim,
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduling (§4.3).
// ---------------------------------------------------------------------------

/// Adapts a graft to the `schedule-delegate` hook.
///
/// Request marshalling: `chosen` u32 at 0, `count` u32 at 4, runnable
/// thread ids u32 each from offset 8. Result: the halt value as a
/// thread id (verified by the scheduler against the valid-thread hash
/// table).
pub struct SchedGraftAdapter {
    /// The underlying instance.
    pub instance: SharedGraft,
    /// Bound on the marshalled runnable list.
    pub max_threads: usize,
    /// Commit mode (see [`RaGraftAdapter::mode`]).
    pub mode: CommitMode,
}

impl SchedGraftAdapter {
    /// A normally-committing adapter.
    pub fn new(instance: SharedGraft) -> SchedGraftAdapter {
        SchedGraftAdapter { instance, max_threads: 256, mode: CommitMode::Commit }
    }
}

impl ScheduleDelegate for SchedGraftAdapter {
    fn delegate(&mut self, snapshot: &SchedSnapshot<'_>) -> ThreadId {
        let mut g = self.instance.borrow_mut();
        if g.is_dead() {
            return snapshot.chosen;
        }
        let n = snapshot.runnable.len().min(self.max_threads);
        {
            let mem = g.mem();
            mem.graft_write_u32(0, snapshot.chosen.0 as u32);
            mem.graft_write_u32(4, n as u32);
            for (i, t) in snapshot.runnable.iter().take(n).enumerate() {
                mem.graft_write_u32(8 + 4 * i, t.0 as u32);
            }
        }
        let out = g.invoke_mode([snapshot.chosen.0, n as u64, 0, 0], self.mode);
        if self.mode == CommitMode::AbortAtEnd {
            g.revive();
        }
        match out {
            InvokeOutcome::Ok { result, .. } => ThreadId(result),
            InvokeOutcome::Aborted { .. } | InvokeOutcome::Dead => snapshot.chosen,
        }
    }
}

// ---------------------------------------------------------------------------
// Stream grafts (§4.4).
// ---------------------------------------------------------------------------

/// Byte offset of the input buffer within a stream graft's segment.
pub const STREAM_IN: usize = 4096;
/// Byte offset of the output buffer.
pub const STREAM_OUT: usize = 4096 + 8192;
/// Maximum stream payload per invocation (the paper's 8 KB buffers).
pub const STREAM_MAX: usize = 8192;

/// Adapts a graft to a stream-transform position (encryption,
/// compression, logging, mirroring — §4.4). "The graft is passed an 8KB
/// input data buffer block and an 8KB output buffer."
pub struct StreamGraftAdapter {
    /// The underlying instance.
    pub instance: SharedGraft,
}

impl StreamGraftAdapter {
    /// Runs the transform. Returns the transformed bytes, or `None`
    /// when the graft aborted/died (callers fall back to the identity
    /// copy — the default kernel path).
    pub fn transform(&mut self, input: &[u8]) -> Option<Vec<u8>> {
        assert!(input.len() <= STREAM_MAX, "stream payload exceeds 8KB buffer");
        let mut g = self.instance.borrow_mut();
        if g.is_dead() {
            return None;
        }
        let (in_addr, out_addr) = {
            let mem = g.mem();
            mem.graft_bytes_mut(STREAM_IN, input.len())?.copy_from_slice(input);
            (mem.seg_base() + STREAM_IN as u64, mem.seg_base() + STREAM_OUT as u64)
        };
        match g.invoke([in_addr, out_addr, input.len() as u64, 0]) {
            InvokeOutcome::Ok { .. } => {
                Some(g.mem().graft_bytes(STREAM_OUT, input.len())?.to_vec())
            }
            InvokeOutcome::Aborted { .. } | InvokeOutcome::Dead => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vino_rm::PrincipalId;
    use vino_sim::VirtualClock;
    use vino_vm::asm::assemble;
    use vino_vm::mem::{AddressSpace, Protection};

    use crate::engine::GraftEngine;
    use crate::hostfn;

    fn make(src: &str, seg: usize) -> SharedGraft {
        let engine = GraftEngine::new(VirtualClock::new());
        let prog = assemble("adapter-test", src, &hostfn::symbols()).unwrap();
        let principal: PrincipalId = engine.rm.borrow_mut().create_graft_principal();
        let mem = AddressSpace::new(seg, 1024, Protection::Sfi);
        share(GraftInstance::new(engine, prog, mem, ThreadId(1), principal))
    }

    #[test]
    fn ra_adapter_returns_submitted_extents() {
        // Graft: prefetch the block after the one just read (like the
        // default policy, but implemented in graft code): offset+len.
        let g = make(
            "
            add r1, r1, r2   ; next offset = req.offset + req.len
            const r2, 4096
            call $ra_submit
            halt r0
            ",
            8192,
        );
        let mut a = RaGraftAdapter::new(Rc::clone(&g));
        let req = RaRequest { offset: 8192, len: 4096, sequential: false, file_size: 1 << 20 };
        let extents = a.compute_ra(&req);
        assert_eq!(extents, vec![Extent { offset: 12288, len: 4096 }]);
    }

    #[test]
    fn ra_adapter_falls_back_on_abort() {
        let g = make("const r1, 0\nconst r2, 0\ndiv r0, r1, r2\nhalt r0", 8192);
        let mut a = RaGraftAdapter::new(Rc::clone(&g));
        let req = RaRequest { offset: 0, len: 4096, sequential: true, file_size: 1 << 20 };
        let extents = a.compute_ra(&req);
        // Fallback is the default sequential policy.
        assert_eq!(extents, default_compute_ra(&req));
        assert!(g.borrow().is_dead());
        // Subsequent calls short-circuit to the default.
        let again = a.compute_ra(&req);
        assert_eq!(again, default_compute_ra(&req));
    }

    #[test]
    fn ra_request_visible_in_shared_header() {
        // The graft echoes header fields back through the trace log.
        let g = make(
            "
            call $shared_base
            mov r5, r0
            loadw r1, [r5+0]   ; offset
            call $log
            loadw r1, [r5+8]   ; sequential flag
            call $log
            halt r0
            ",
            8192,
        );
        let mut a = RaGraftAdapter::new(Rc::clone(&g));
        let req = RaRequest { offset: 12345, len: 1, sequential: true, file_size: 1 << 20 };
        a.compute_ra(&req);
        // No ra_submit calls: no extents; but the graft saw the header.
        // (Inspect via a second invocation's log? The adapter consumed
        // the outcome; instead verify via kv? Simplest: re-run manually.)
        let mut inst = g.borrow_mut();
        inst.mem().graft_write_u32(0, 777);
        match inst.invoke([0; 4]) {
            InvokeOutcome::Ok { log, .. } => assert_eq!(log[0], 777),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn evict_adapter_round_trip() {
        // Graft scans the resident list and returns the last entry.
        let g = make(
            "
            call $shared_base
            mov r5, r0
            loadw r2, [r5+4]    ; count
            subi r2, r2, 1
            muli r2, r2, 4
            add r5, r5, r2
            loadw r0, [r5+8]    ; resident[count-1]
            halt r0
            ",
            8192,
        );
        let mut a = EvictGraftAdapter::new(g);
        let resident = [PageId(10), PageId(11), PageId(12)];
        let choice = a.choose(PageId(10), &resident);
        assert_eq!(choice, PageId(12));
    }

    #[test]
    fn evict_adapter_falls_back_to_victim_on_abort() {
        let g = make("spin: jmp spin", 4096);
        g.borrow_mut().max_slices = 2;
        let mut a = EvictGraftAdapter::new(Rc::clone(&g));
        let choice = a.choose(PageId(5), &[PageId(5), PageId(6)]);
        assert_eq!(choice, PageId(5), "abort ⇒ accept the global victim");
        assert!(g.borrow().is_dead());
    }

    #[test]
    fn sched_adapter_round_trip() {
        // Graft always returns the second runnable thread.
        let g = make(
            "
            call $shared_base
            mov r5, r0
            loadw r0, [r5+12]   ; runnable[1]
            halt r0
            ",
            4096,
        );
        let mut a = SchedGraftAdapter::new(g);
        let runnable = [ThreadId(3), ThreadId(4)];
        let snap = SchedSnapshot { chosen: ThreadId(3), runnable: &runnable };
        assert_eq!(a.delegate(&snap), ThreadId(4));
    }

    #[test]
    fn stream_adapter_xor_transform() {
        // The §4.4 graft: xor-encrypt input into output, word by word.
        let g = make(
            "
            ; r1 = in addr, r2 = out addr, r3 = len (bytes)
            const r4, 0          ; i
            const r5, 0x5A5A5A5A ; key
            loop:
            bgeu r4, r3, done
            add r6, r1, r4
            loadw r7, [r6+0]
            xor r7, r7, r5
            add r6, r2, r4
            storew r7, [r6+0]
            addi r4, r4, 4
            jmp loop
            done:
            halt r0
            ",
            32 * 1024,
        );
        let mut a = StreamGraftAdapter { instance: g };
        let input: Vec<u8> = (0..256u32).flat_map(|i| i.to_le_bytes()).collect();
        let out = a.transform(&input).expect("graft must succeed");
        assert_eq!(out.len(), input.len());
        for (i, chunk) in out.chunks(4).enumerate() {
            let got = u32::from_le_bytes(chunk.try_into().unwrap());
            assert_eq!(got, (i as u32) ^ 0x5A5A5A5A);
        }
        // Decrypting (running the graft again over the output) restores
        // the plaintext — the "symmetrical decryption" of §4.4.
        let g2 = a.instance.clone();
        let mut a2 = StreamGraftAdapter { instance: g2 };
        assert_eq!(a2.transform(&out).unwrap(), input);
    }

    #[test]
    fn stream_adapter_none_on_dead() {
        let g = make("spin: jmp spin", 32 * 1024);
        g.borrow_mut().max_slices = 1;
        let mut a = StreamGraftAdapter { instance: Rc::clone(&g) };
        assert!(a.transform(&[0u8; 64]).is_none());
        assert!(a.transform(&[0u8; 64]).is_none(), "dead graft stays dead");
    }
}

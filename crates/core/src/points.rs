//! The graft namespace and graft points.
//!
//! §3.4: "To install a graft, an application must first obtain a handle
//! for the graft point. This is accomplished by looking up the graft
//! point in a kernel-maintained graft namespace. The name is composed of
//! the object to be grafted and the name of the function to be
//! replaced."
//!
//! §3.5: event graft points *add* handlers rather than replace a
//! function, "called in addition to any other functions added to the
//! graft point. We provide an interface for applications to specify the
//! order in which grafted functions are called."

use std::collections::HashMap;

use crate::adapters::SharedGraft;
use crate::engine::InvokeOutcome;

/// The two extension models (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointKind {
    /// Replace a member function on a kernel object (Figure 1).
    Function {
        /// Restricted points are global policies installable only by
        /// privileged users (§2.3, Rule 5).
        restricted: bool,
    },
    /// Add a handler for a kernel event (Figure 2).
    Event,
}

/// The kernel-maintained graft namespace.
#[derive(Debug, Default)]
pub struct GraftNamespace {
    points: HashMap<String, PointKind>,
}

impl GraftNamespace {
    /// An empty namespace.
    pub fn new() -> GraftNamespace {
        GraftNamespace::default()
    }

    /// Declares a graft point. Class designers decide which functions
    /// are graftable (§3.4); undeclared names simply do not resolve.
    pub fn define(&mut self, name: impl Into<String>, kind: PointKind) {
        self.points.insert(name.into(), kind);
    }

    /// Resolves a graft-point name to its handle.
    pub fn lookup(&self, name: &str) -> Option<PointKind> {
        self.points.get(name).copied()
    }

    /// Lists all declared points, sorted by name.
    pub fn list(&self) -> Vec<(&str, PointKind)> {
        let mut v: Vec<_> = self.points.iter().map(|(n, k)| (n.as_str(), *k)).collect();
        v.sort_by_key(|(n, _)| *n);
        v
    }
}

/// One handler registered on an event point.
#[derive(Debug)]
pub struct EventHandler {
    /// Application-specified dispatch order (lower runs first).
    pub order: i32,
    /// The installed graft.
    pub graft: SharedGraft,
}

/// An event graft point: an ordered list of added handlers.
#[derive(Debug, Default)]
pub struct EventPoint {
    handlers: Vec<EventHandler>,
}

/// What one handler did with one event.
#[derive(Debug)]
pub struct HandlerReport {
    /// The handler graft's name.
    pub graft: String,
    /// Its invocation outcome.
    pub outcome: InvokeOutcome,
}

impl EventPoint {
    /// An empty event point.
    pub fn new() -> EventPoint {
        EventPoint::default()
    }

    /// Adds a handler with an explicit order (§3.5's ordering API).
    pub fn add_handler(&mut self, graft: SharedGraft, order: i32) {
        self.handlers.push(EventHandler { order, graft });
        self.handlers.sort_by_key(|h| h.order);
    }

    /// Number of live handlers.
    pub fn handler_count(&self) -> usize {
        self.handlers.len()
    }

    /// Removes handlers whose grafts have been forcibly unloaded.
    pub fn reap_dead(&mut self) -> usize {
        let before = self.handlers.len();
        self.handlers.retain(|h| !h.graft.borrow().is_dead());
        before - self.handlers.len()
    }

    /// Visits every handler graft (e.g. to marshal a payload into each
    /// handler's shared buffer before dispatch).
    pub fn for_each_handler(&self, mut f: impl FnMut(&SharedGraft)) {
        for h in &self.handlers {
            f(&h.graft);
        }
    }

    /// Dispatches one event to every handler, in order. Each handler
    /// runs in its own transaction (the wrapper provides it); a handler
    /// abort does not stop later handlers (Rule 9).
    pub fn dispatch(&mut self, args: [u64; 4]) -> Vec<HandlerReport> {
        let mut reports = Vec::with_capacity(self.handlers.len());
        for h in &self.handlers {
            let outcome = h.graft.borrow_mut().invoke(args);
            reports.push(HandlerReport { graft: h.graft.borrow().name.clone(), outcome });
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use vino_sim::{ThreadId, VirtualClock};
    use vino_vm::asm::assemble;
    use vino_vm::mem::{AddressSpace, Protection};

    use crate::adapters::share;
    use crate::engine::{GraftEngine, GraftInstance};
    use crate::hostfn;

    #[test]
    fn namespace_define_lookup_list() {
        let mut ns = GraftNamespace::new();
        ns.define("open_file/compute-ra", PointKind::Function { restricted: false });
        ns.define("kernel/global-scheduler", PointKind::Function { restricted: true });
        ns.define("tcp/80", PointKind::Event);
        assert_eq!(
            ns.lookup("open_file/compute-ra"),
            Some(PointKind::Function { restricted: false })
        );
        assert_eq!(ns.lookup("nope"), None);
        let names: Vec<&str> = ns.list().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["kernel/global-scheduler", "open_file/compute-ra", "tcp/80"]);
    }

    fn graft(engine: &Rc<GraftEngine>, src: &str) -> SharedGraft {
        let prog = assemble("h", src, &hostfn::symbols()).unwrap();
        let principal = engine.rm.borrow_mut().create_graft_principal();
        let mem = AddressSpace::new(4096, 256, Protection::Sfi);
        share(GraftInstance::new(Rc::clone(engine), prog, mem, ThreadId(1), principal))
    }

    #[test]
    fn event_dispatch_runs_in_order() {
        let engine = GraftEngine::new(VirtualClock::new());
        let mut ep = EventPoint::new();
        // Handlers record their order in kernel-state slots via the
        // accessor: slot = handler id, value = a counter they bump.
        let a = graft(&engine, "const r1, 1\nmov r2, r1\ncall $kv_set\nhalt r0");
        let b = graft(
            &engine,
            "const r1, 1\ncall $kv_get\nmov r2, r0\nconst r1, 2\ncall $kv_set\nhalt r0",
        );
        ep.add_handler(b, 10); // Added first but ordered second.
        ep.add_handler(a, 5);
        let reports = ep.dispatch([0; 4]);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].graft, "h");
        // a ran first (wrote slot1=1), then b copied slot1 into slot2.
        assert_eq!(engine.kv_read(1), 1);
        assert_eq!(engine.kv_read(2), 1);
    }

    #[test]
    fn handler_abort_does_not_stop_dispatch() {
        let engine = GraftEngine::new(VirtualClock::new());
        let mut ep = EventPoint::new();
        let bad = graft(&engine, "const r1, 0\nconst r2, 0\ndiv r0, r1, r2\nhalt r0");
        let good = graft(&engine, "const r1, 9\nconst r2, 1\ncall $kv_set\nhalt r0");
        ep.add_handler(bad, 0);
        ep.add_handler(good, 1);
        let reports = ep.dispatch([0; 4]);
        assert!(matches!(reports[0].outcome, InvokeOutcome::Aborted { .. }));
        assert!(matches!(reports[1].outcome, InvokeOutcome::Ok { .. }));
        assert_eq!(engine.kv_read(9), 1, "later handler still ran (Rule 9)");
        // The dead handler can be reaped.
        assert_eq!(ep.reap_dead(), 1);
        assert_eq!(ep.handler_count(), 1);
    }
}

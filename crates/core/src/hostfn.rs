//! The graft-callable kernel ABI.
//!
//! §3.3: "VINO kernel developers maintain a list of graft-callable
//! functions. Only functions on this list may be called from grafts."
//! and §2.3: grafts "should not be able to call functions that change
//! kernel state in an unrecoverable fashion; a graft should not be able
//! to call shutdown()".
//!
//! Functions below [`FIRST_RESTRICTED`] are graft-callable and appear in
//! the table built by [`build_callable_table`]; the rest exist in the
//! kernel but are deliberately absent from the table, so direct calls
//! are rejected at link time and indirect calls trap at run time.

use vino_misfit::CallableTable;
use vino_vm::isa::HostFnId;
use vino_vm::SymbolTable;

/// Acquire a kernel lock: `r1` = lock handle index. Two-phase inside a
/// transaction; times out under contention (§3.2).
pub const LOCK: HostFnId = HostFnId(1);
/// Release a kernel lock: `r1` = lock handle index (deferred to commit
/// or abort when transactional).
pub const UNLOCK: HostFnId = HostFnId(2);
/// Submit a read-ahead extent: `r1` = byte offset, `r2` = byte length.
/// The open-file machinery validates and queues it (§4.1.2).
pub const RA_SUBMIT: HostFnId = HostFnId(3);
/// Allocate kernel heap: `r1` = bytes. Charged to the graft's resource
/// principal; fails (trapping the graft) when over limit (§3.2).
pub const KALLOC: HostFnId = HostFnId(4);
/// Free kernel heap: `r1` = bytes.
pub const KFREE: HostFnId = HostFnId(5);
/// Kernel-state accessor, write: `r1` = slot, `r2` = value. Pushes the
/// reversing operation onto the transaction's undo call stack (§3.1).
pub const KV_SET: HostFnId = HostFnId(6);
/// Kernel-state accessor, read: `r1` = slot. Returns meta-data grafts
/// are entitled to (§2.1).
pub const KV_GET: HostFnId = HostFnId(7);
/// Returns the base address of the graft's segment (where the kernel
/// places shared buffers, §4.1.2/§4.2.2).
pub const SHARED_BASE: HostFnId = HostFnId(8);
/// Debug trace: `r1` = value, appended to the invocation's log.
pub const LOG: HostFnId = HostFnId(9);
/// Invoke another installed graft: `r1` = subgraft handle, `r2`/`r3` =
/// arguments. The callee runs in a *nested* transaction (§3.1: "because
/// graft functions may indirectly invoke other grafts, we found it
/// necessary to include support for nested transactions"). Returns the
/// callee's result; a callee abort returns `CALLEE_ABORTED` without
/// aborting the caller.
pub const CALL_GRAFT: HostFnId = HostFnId(10);

/// First id that is NOT graft-callable.
pub const FIRST_RESTRICTED: u32 = 100;

/// Halt the machine. Exists; never graft-callable (§2.3).
pub const SHUTDOWN: HostFnId = HostFnId(100);
/// Returns another user's data. Exists; never graft-callable (Rule 4:
/// "any interface that returns actual data to its caller cannot be
/// called by a graft").
pub const READ_USER_DATA: HostFnId = HostFnId(101);
/// Replace the global security module. Exists; never graft-callable
/// (Rule 5's restricted kernel entry point).
pub const SET_SECURITY_MODULE: HostFnId = HostFnId(102);

/// Builds the sparse open hash table of graft-callable functions.
pub fn build_callable_table() -> CallableTable {
    let mut t = CallableTable::new();
    for (id, name) in GRAFT_CALLABLE {
        t.register(*id, *name);
    }
    t
}

/// The graft-callable list with names (the assembler symbol table).
pub const GRAFT_CALLABLE: &[(HostFnId, &str)] = &[
    (LOCK, "lock"),
    (UNLOCK, "unlock"),
    (RA_SUBMIT, "ra_submit"),
    (KALLOC, "kalloc"),
    (KFREE, "kfree"),
    (KV_SET, "kv_set"),
    (KV_GET, "kv_get"),
    (SHARED_BASE, "shared_base"),
    (LOG, "log"),
    (CALL_GRAFT, "call_graft"),
];

/// Restricted functions, named so the assembler can *try* to call them
/// in negative tests.
pub const RESTRICTED: &[(HostFnId, &str)] = &[
    (SHUTDOWN, "shutdown"),
    (READ_USER_DATA, "read_user_data"),
    (SET_SECURITY_MODULE, "set_security_module"),
];

/// A symbol table for assembling graft source: graft-callable names
/// resolve, and restricted names resolve too (so the *linker*, not the
/// assembler, is what rejects them — matching the paper's pipeline).
pub fn symbols() -> SymbolTable {
    let mut s = SymbolTable::new();
    for (id, name) in GRAFT_CALLABLE.iter().chain(RESTRICTED) {
        s.define(*name, *id);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn callable_table_contains_exactly_the_callable_list() {
        let t = build_callable_table();
        assert_eq!(t.len(), GRAFT_CALLABLE.len());
        assert!(t.contains(CALL_GRAFT));
        for (id, _) in GRAFT_CALLABLE {
            assert!(t.contains(*id));
        }
        for (id, _) in RESTRICTED {
            assert!(!t.contains(*id), "{id} must not be graft-callable");
        }
    }

    #[test]
    fn restricted_ids_are_above_the_fence() {
        for (id, _) in GRAFT_CALLABLE {
            assert!(id.0 < FIRST_RESTRICTED);
        }
        for (id, _) in RESTRICTED {
            assert!(id.0 >= FIRST_RESTRICTED);
        }
    }

    #[test]
    fn symbols_resolve_both_sets() {
        let s = symbols();
        assert_eq!(s.lookup("lock"), Some(LOCK));
        assert_eq!(s.lookup("shutdown"), Some(SHUTDOWN));
        assert_eq!(s.lookup("nosuch"), None);
    }
}

//! The VINO kernel facade: every subsystem wired together, with the
//! install entry points for each graft class and the network-event
//! dispatch loop of §3.5.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use vino_dev::disk::DiskImage;
use vino_dev::nic::{NetEvent, Nic, Port};
use vino_dev::Disk;
use vino_fs::{FileSystem, FsError, RecoveryReport};
use vino_mem::{MemorySystem, VasId};
use vino_misfit::{MisfitTool, SignedImage, SigningKey};
use vino_rm::{Limits, PrincipalId};
use vino_sim::fault::FaultPlane;
use vino_sim::metrics::{Counter, MetricsPlane};
use vino_sim::plane::AttachSlot;
use vino_sim::profile::ProfilePlane;
use vino_sim::trace::{PostMortem, TraceEvent, TracePlane};
use vino_sim::watch::WatchPlane;
use vino_sim::{ThreadId, VirtualClock};
use vino_vm::isa::Program;

use crate::adapters::{
    share, EvictGraftAdapter, RaGraftAdapter, SchedGraftAdapter, SharedGraft, StreamGraftAdapter,
    APP_BUF,
};
use crate::admission::{AdmissionController, Decision};
use crate::engine::GraftEngine;
use crate::loader::{load_graft, InstallError, InstallOpts};
use crate::points::{EventPoint, GraftNamespace, HandlerReport, PointKind};

/// Standard graft-point names registered at boot.
pub mod point_names {
    /// Per-open-file read-ahead policy (§4.1, Figure 1).
    pub const COMPUTE_RA: &str = "open_file/compute-ra";
    /// Per-VAS page-eviction policy (§4.2).
    pub const PICK_VICTIM: &str = "vas/pick-victim";
    /// Per-thread scheduling delegation (§4.3).
    pub const SCHEDULE_DELEGATE: &str = "thread/schedule-delegate";
    /// Stream transform position (§4.4).
    pub const STREAM_TRANSFORM: &str = "stream/transform";
    /// The global scheduler — restricted (§2.3's "highly biased
    /// scheduler" attack).
    pub const GLOBAL_SCHEDULER: &str = "kernel/global-scheduler";
    /// The security-enforcement module — restricted (Rule 5).
    pub const SECURITY_POLICY: &str = "kernel/security-policy";
    /// Per-port packet filter / steering point on the RX path
    /// (`vino-net`'s graftable demux — the canonical packet-filter
    /// extension).
    pub const PACKET_FILTER: &str = "net/packet-filter";
}

/// Boot-time configuration.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Buffer-cache capacity in blocks.
    pub cache_blocks: usize,
    /// Physical memory capacity in pages.
    pub memory_pages: usize,
    /// Maximum files on the volume.
    pub max_files: u32,
    /// Passphrase from which the MiSFIT signing key is derived.
    pub signing_passphrase: String,
    /// Virtual milliseconds between debug-plane checkpoints. Batteries
    /// that checkpoint (`vino-bench`'s debug storm) capture a restore
    /// point every this-many virtual ms; `0` disables checkpointing.
    pub checkpoint_interval_ms: u64,
    /// Flight-recorder ring capacity, in trace records, for planes
    /// built from this config (see `TracePlane::with_capacity`).
    pub trace_capacity: usize,
    /// Post-mortem window: how many trailing trace records a crash
    /// report captures (see `TracePlane::set_post_mortem_window`).
    pub post_mortem_window: usize,
}

impl Default for KernelConfig {
    fn default() -> KernelConfig {
        KernelConfig {
            cache_blocks: 256,
            memory_pages: 512,
            max_files: 64,
            signing_passphrase: "vino-default-key".to_string(),
            checkpoint_interval_ms: 250,
            trace_capacity: vino_sim::trace::DEFAULT_CAPACITY,
            post_mortem_window: vino_sim::trace::DEFAULT_POST_MORTEM_WINDOW,
        }
    }
}

/// Rejected plane attachment.
///
/// [`Kernel::attach_fault_plane`], [`Kernel::attach_trace_plane`],
/// [`Kernel::attach_metrics_plane`] and
/// [`Kernel::attach_profile_plane`]
/// are attach-once: subsystems clone the `Rc` at attach time and grafts
/// bind the plane at install time, so silently swapping planes mid-run
/// would leave earlier grafts and subsystems on the old plane — a
/// half-attached state with nondeterministic coverage. The contract is
/// therefore *error on double attach*, enforced by one
/// [`vino_sim::plane::AttachSlot`] per plane kind (shared
/// with the sim crate, which owns the error type).
pub use vino_sim::plane::AttachError;

/// The result of dispatching one network event.
#[derive(Debug)]
pub struct EventReport {
    /// The port the event arrived on.
    pub port: Port,
    /// Per-handler outcomes, in dispatch order.
    pub handlers: Vec<HandlerReport>,
}

/// The kernel: subsystems plus the grafting layer.
pub struct Kernel {
    /// The virtual clock.
    pub clock: Rc<VirtualClock>,
    /// The graft engine (transactions, resources, callable table).
    pub engine: Rc<GraftEngine>,
    /// The scheduler.
    pub sched: RefCell<vino_sched::Scheduler>,
    /// The virtual-memory system.
    pub mem: RefCell<MemorySystem>,
    /// The file system.
    pub fs: RefCell<FileSystem>,
    /// The network interface.
    pub nic: RefCell<Nic>,
    /// The trusted MiSFIT tool instance (shares the kernel's key).
    pub tool: MisfitTool,
    namespace: RefCell<GraftNamespace>,
    event_points: RefCell<HashMap<Port, EventPoint>>,
    fn_grafts: RefCell<HashMap<String, SharedGraft>>,
    fault_attached: AttachSlot,
    trace_attached: AttachSlot,
    metrics_attached: AttachSlot,
    profile_attached: AttachSlot,
    watch_attached: AttachSlot,
    admission: RefCell<AdmissionController>,
}

impl Kernel {
    /// Boots a kernel with the default configuration.
    pub fn boot() -> Rc<Kernel> {
        Kernel::boot_with(KernelConfig::default())
    }

    /// Boots a kernel with an explicit configuration.
    pub fn boot_with(cfg: KernelConfig) -> Rc<Kernel> {
        Kernel::boot_with_clock(cfg, VirtualClock::new())
    }

    /// Boots a kernel on an externally supplied virtual clock. Several
    /// kernels booted on one clock advance in lock-step — the
    /// replication harness drives a primary and a replica this way, so
    /// every cross-kernel interleaving is a deterministic function of
    /// the seed.
    pub fn boot_with_clock(cfg: KernelConfig, clock: Rc<VirtualClock>) -> Rc<Kernel> {
        let disk = Disk::new(Rc::clone(&clock));
        let fs = FileSystem::format(Rc::clone(&clock), disk, cfg.cache_blocks, cfg.max_files);
        Kernel::assemble(cfg, clock, fs)
    }

    /// Boots a kernel over the surviving disk image of a crashed (or
    /// cleanly shut down) kernel: instead of formatting a fresh volume,
    /// the disk is reconstructed from `image` and mounted, which runs
    /// journal recovery (`FileSystem::recover`) before any subsystem
    /// touches it. This is the crash/remount half of the kernel
    /// lifecycle — snapshot the dying kernel with
    /// [`Kernel::crash_image`], boot a fresh one here.
    pub fn boot_from_image(cfg: KernelConfig, image: DiskImage) -> Result<Rc<Kernel>, FsError> {
        Kernel::boot_from_image_with_clock(cfg, VirtualClock::new(), image)
    }

    /// [`Kernel::boot_from_image`] on an externally supplied virtual
    /// clock — the failover path: the replication harness promotes a
    /// caught-up replica over its own disk image without leaving the
    /// shared timeline. A malformed image (block vector disagreeing
    /// with its geometry) is refused as [`FsError::BadVolume`].
    pub fn boot_from_image_with_clock(
        cfg: KernelConfig,
        clock: Rc<VirtualClock>,
        image: DiskImage,
    ) -> Result<Rc<Kernel>, FsError> {
        let disk = Disk::from_image(Rc::clone(&clock), image).map_err(|_| FsError::BadVolume)?;
        let fs = FileSystem::mount(Rc::clone(&clock), disk, cfg.cache_blocks)?;
        Ok(Kernel::assemble(cfg, clock, fs))
    }

    fn assemble(cfg: KernelConfig, clock: Rc<VirtualClock>, fs: FileSystem) -> Rc<Kernel> {
        let engine = GraftEngine::new(Rc::clone(&clock));
        let mut ns = GraftNamespace::new();
        ns.define(point_names::COMPUTE_RA, PointKind::Function { restricted: false });
        ns.define(point_names::PICK_VICTIM, PointKind::Function { restricted: false });
        ns.define(point_names::SCHEDULE_DELEGATE, PointKind::Function { restricted: false });
        ns.define(point_names::STREAM_TRANSFORM, PointKind::Function { restricted: false });
        ns.define(point_names::GLOBAL_SCHEDULER, PointKind::Function { restricted: true });
        ns.define(point_names::SECURITY_POLICY, PointKind::Function { restricted: true });
        ns.define(point_names::PACKET_FILTER, PointKind::Function { restricted: false });
        Rc::new(Kernel {
            sched: RefCell::new(vino_sched::Scheduler::new(Rc::clone(&clock))),
            mem: RefCell::new(MemorySystem::new(Rc::clone(&clock), cfg.memory_pages)),
            fs: RefCell::new(fs),
            nic: RefCell::new(Nic::new()),
            tool: MisfitTool::new(SigningKey::from_passphrase(&cfg.signing_passphrase)),
            namespace: RefCell::new(ns),
            event_points: RefCell::new(HashMap::new()),
            fn_grafts: RefCell::new(HashMap::new()),
            fault_attached: AttachSlot::new(),
            trace_attached: AttachSlot::new(),
            metrics_attached: AttachSlot::new(),
            profile_attached: AttachSlot::new(),
            watch_attached: AttachSlot::new(),
            admission: RefCell::new(AdmissionController::new()),
            engine,
            clock,
        })
    }

    /// The graft namespace (Figure 1's lookup target).
    pub fn namespace(&self) -> std::cell::Ref<'_, GraftNamespace> {
        self.namespace.borrow()
    }

    /// Attaches one fault plane to every instrumented subsystem: disk
    /// I/O (via the file system), lock time-outs, resource exhaustion,
    /// image verification, and — for grafts loaded after this call —
    /// the VM's per-instruction trap site. One plane, one seed, one
    /// deterministic schedule across the whole kernel.
    ///
    /// Attach-once: a second call returns
    /// [`AttachError::AlreadyAttached`] (see [`AttachError`] for why a
    /// silent swap would be wrong).
    pub fn attach_fault_plane(&self, plane: Rc<FaultPlane>) -> Result<(), AttachError> {
        self.fault_attached.claim()?;
        self.fs.borrow_mut().set_fault_plane(Rc::clone(&plane));
        self.engine.txn.borrow_mut().set_fault_plane(Rc::clone(&plane));
        self.engine.rm.borrow_mut().set_fault_plane(Rc::clone(&plane));
        self.tool.set_fault_plane(Rc::clone(&plane));
        self.engine.set_fault_plane(plane);
        Ok(())
    }

    /// Attaches one trace plane to every instrumented subsystem: file
    /// system, transaction manager, resource accountant, reliability
    /// manager, and — for grafts loaded after this call — the VM and
    /// the wrapper's graft-lifecycle events. One plane, one canonical
    /// event stream across the whole kernel (see `docs/TRACING.md`).
    ///
    /// Attach-once, like [`attach_fault_plane`](Self::attach_fault_plane).
    pub fn attach_trace_plane(&self, plane: Rc<TracePlane>) -> Result<(), AttachError> {
        self.trace_attached.claim()?;
        self.fs.borrow_mut().set_trace_plane(Rc::clone(&plane));
        self.engine.txn.borrow_mut().set_trace_plane(Rc::clone(&plane));
        self.engine.rm.borrow_mut().set_trace_plane(Rc::clone(&plane));
        self.engine.reliability.borrow_mut().set_trace_plane(Rc::clone(&plane));
        self.engine.set_trace_plane(plane);
        Ok(())
    }

    /// Attaches one metrics plane to every instrumented subsystem: file
    /// system, transaction manager, resource accountant, reliability
    /// manager, and — for grafts loaded after this call — the VM and
    /// the wrapper's per-invocation overhead-attribution brackets. One
    /// plane, one set of counters/histograms/ledgers across the whole
    /// kernel (see `docs/METRICS.md`). Recording never charges the
    /// virtual clock, so attaching a metrics plane changes no timings.
    ///
    /// Attach-once, like [`attach_fault_plane`](Self::attach_fault_plane).
    pub fn attach_metrics_plane(&self, plane: Rc<MetricsPlane>) -> Result<(), AttachError> {
        self.metrics_attached.claim()?;
        self.fs.borrow_mut().set_metrics_plane(Rc::clone(&plane));
        self.engine.txn.borrow_mut().set_metrics_plane(Rc::clone(&plane));
        self.engine.rm.borrow_mut().set_metrics_plane(Rc::clone(&plane));
        self.engine.reliability.borrow_mut().set_metrics_plane(Rc::clone(&plane));
        self.nic.borrow_mut().set_metrics_plane(Rc::clone(&plane));
        self.engine.set_metrics_plane(plane);
        Ok(())
    }

    /// Attaches one profile plane to every instrumented subsystem: file
    /// system (dispatch indirection), transaction manager (envelope
    /// charges and spans), resource accountant (grant marks), and — for
    /// grafts loaded after this call — the VM's per-PC billing,
    /// call-graph capture and the wrapper's invocation spans. One
    /// plane, one cycle-exact profile across the whole kernel (see
    /// `docs/PROFILING.md`). Recording never charges the virtual clock,
    /// so attaching a profile plane changes no timings.
    ///
    /// Attach-once, like [`attach_fault_plane`](Self::attach_fault_plane).
    pub fn attach_profile_plane(&self, plane: Rc<ProfilePlane>) -> Result<(), AttachError> {
        self.profile_attached.claim()?;
        self.fs.borrow_mut().set_profile_plane(Rc::clone(&plane));
        self.engine.txn.borrow_mut().set_profile_plane(Rc::clone(&plane));
        self.engine.rm.borrow_mut().set_profile_plane(Rc::clone(&plane));
        self.engine.set_profile_plane(plane);
        Ok(())
    }

    /// Attaches one watch plane to every instrumented subsystem: the
    /// graft wrapper (install / invocation-cost / abort / quarantine
    /// windows, keyed by principal), the file system (journal
    /// occupancy), and the transaction manager (lock time-out rate).
    /// The RX shed-rate window is fed by the packet plane (`vino-net`),
    /// which reaches the plane through the engine accessor. Attaching
    /// a watch plane also arms the admission controller: from now on
    /// every install is gated on the plane's firing alerts (see
    /// `docs/WATCH.md`). Recording never charges the virtual clock, so
    /// attaching a watch plane changes no timings — only install
    /// admissibility.
    ///
    /// Attach-once, like [`attach_fault_plane`](Self::attach_fault_plane).
    pub fn attach_watch_plane(&self, plane: Rc<WatchPlane>) -> Result<(), AttachError> {
        self.watch_attached.claim()?;
        if let Some(tp) = self.engine.trace_plane() {
            plane.set_trace_plane(tp);
        }
        self.fs.borrow_mut().set_watch_plane(Rc::clone(&plane));
        self.engine.txn.borrow_mut().set_watch_plane(Rc::clone(&plane));
        self.engine.set_watch_plane(plane);
        Ok(())
    }

    /// The attached watch plane, for polls and snapshots
    /// ([`WatchPlane::poll`], [`WatchPlane::snapshot`],
    /// [`WatchPlane::serialize`]). `None` when no plane is attached.
    pub fn watch(&self) -> Option<Rc<WatchPlane>> {
        self.engine.watch_plane()
    }

    /// The admission controller gating the install path (inspection,
    /// policy and checkpoint state). It only acts when a watch plane
    /// is attached — without one there are no alerts to consult.
    pub fn admission(&self) -> std::cell::RefMut<'_, AdmissionController> {
        self.admission.borrow_mut()
    }

    /// The attached profile plane, for renders
    /// ([`ProfilePlane::folded`], [`ProfilePlane::chrome_trace`],
    /// [`ProfilePlane::render_top`], [`ProfilePlane::snapshot`]).
    /// `None` when no plane is attached.
    pub fn profile(&self) -> Option<Rc<ProfilePlane>> {
        self.engine.profile_plane()
    }

    /// The attached metrics plane, for snapshots ([`MetricsPlane::snapshot`],
    /// [`MetricsPlane::expose`], [`MetricsPlane::health`]). `None` when
    /// no plane is attached.
    pub fn metrics(&self) -> Option<Rc<MetricsPlane>> {
        self.engine.metrics_plane()
    }

    /// The persistent disk state as of this instant — what an immediate
    /// power cut would leave on the platters. Pass it to
    /// [`Kernel::boot_from_image`] to model crash-and-recover. Works on
    /// a kernel whose file system has already halted.
    pub fn crash_image(&self) -> DiskImage {
        self.fs.borrow().disk_image()
    }

    /// Drives the kernel to a checkpointable instant: no live
    /// transactions (asserted), transaction time-outs drained, the
    /// journal quiesced, caches and prefetch state dropped, and the
    /// disk mechanism re-homed, so [`Kernel::crash_image`] plus the
    /// planes' `export_state` snapshots fully determine the replayed
    /// future. A kernel restored from such a capture (boot the image,
    /// quiesce again, rebuild scaffolding, replant plane state) resumes
    /// the exact event stream of the uninterrupted run — see
    /// `docs/DEBUGGING.md`.
    ///
    /// Panics if a transaction is still live or the file system has
    /// halted: checkpoints are only meaningful between battery steps.
    pub fn quiesce_for_checkpoint(&self) {
        self.engine.txn.borrow_mut().clear_timeouts();
        self.fs.borrow_mut().quiesce_for_checkpoint();
    }

    /// What mount-time journal recovery found, for kernels booted via
    /// [`Kernel::boot_from_image`]. `None` on a freshly formatted boot.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.fs.borrow().recovery_report()
    }

    /// The flight recorder's latest abort snapshot, if any invocation
    /// has aborted since the trace plane was attached. `None` when no
    /// plane is attached or every invocation committed cleanly.
    pub fn post_mortem(&self) -> Option<PostMortem> {
        self.engine.trace_plane().and_then(|tp| tp.post_mortem())
    }

    /// The engine's reliability manager (failure ledgers, quarantine).
    pub fn reliability(&self) -> std::cell::RefMut<'_, crate::reliability::ReliabilityManager> {
        self.engine.reliability.borrow_mut()
    }

    /// Convenience: compile (assemble + MiSFIT-process) graft source
    /// into a signed image using the kernel's trusted tool. In the
    /// paper this step happens in the application's build pipeline.
    pub fn compile_graft(&self, name: &str, asm_src: &str) -> Result<SignedImage, String> {
        let prog = vino_vm::assemble(name, asm_src, &crate::hostfn::symbols())
            .map_err(|e| e.to_string())?;
        let (image, _) = self.tool.process(&prog).map_err(|e| e.to_string())?;
        Ok(image)
    }

    /// Compiles GraftC source (the C-like graft language; see
    /// [`crate::graftc`]) through the full pipeline: compile →
    /// instrument → sign.
    pub fn compile_graft_c(&self, name: &str, src: &str) -> Result<SignedImage, String> {
        let prog = crate::graftc::compile_source(name, src).map_err(|e| e.to_string())?;
        let (image, _) = self.tool.process(&prog).map_err(|e| e.to_string())?;
        Ok(image)
    }

    /// Compiles WITHOUT SFI instrumentation (the benchmark "unsafe
    /// path"); still signed so the loader accepts it.
    pub fn compile_graft_unsafe(&self, name: &str, asm_src: &str) -> Result<SignedImage, String> {
        let prog = vino_vm::assemble(name, asm_src, &crate::hostfn::symbols())
            .map_err(|e| e.to_string())?;
        Ok(self.tool.seal(&prog))
    }

    /// Direct access to a raw program seal for pre-built programs.
    pub fn seal_program(&self, prog: &Program) -> SignedImage {
        self.tool.seal(prog)
    }

    /// Creates an application principal with the given limits.
    pub fn create_app(&self, limits: Limits) -> PrincipalId {
        self.engine.rm.borrow_mut().create_principal(limits)
    }

    /// Spawns a kernel thread.
    pub fn spawn_thread(&self, name: &str) -> ThreadId {
        self.sched.borrow_mut().spawn(name)
    }

    fn check_point(&self, name: &str, opts: &InstallOpts) -> Result<PointKind, InstallError> {
        let kind = self
            .namespace
            .borrow()
            .lookup(name)
            .ok_or_else(|| InstallError::NoSuchPoint(name.to_string()))?;
        if let PointKind::Function { restricted: true } = kind {
            if !opts.privileged {
                return Err(InstallError::Restricted { point: name.to_string() });
            }
        }
        Ok(kind)
    }

    /// The admission gate at the head of every install funnel: with a
    /// watch plane attached, poll it and ask the controller whether
    /// `installer` may install right now. Decisions are traced
    /// (`watch.admit` / `watch.deny`) and countered
    /// (`vino_admission_*_total`). Without a watch plane there are no
    /// alerts to consult and every install is admissible, so kernels
    /// that never attach one behave exactly as before.
    fn admission_gate(&self, installer: PrincipalId) -> Result<(), InstallError> {
        let Some(wp) = self.engine.watch_plane() else { return Ok(()) };
        let firing = wp.principal_firing(installer.0);
        let decision = self.admission.borrow_mut().decide(installer, firing, self.clock.now());
        let tp = self.engine.trace_plane();
        let mp = self.engine.metrics_plane();
        match decision {
            Decision::Allowed => {
                if let Some(tp) = &tp {
                    tp.emit(TraceEvent::AdmissionAllow { principal: installer.0 });
                }
                if let Some(mp) = &mp {
                    mp.inc(Counter::AdmissionAllows);
                }
                Ok(())
            }
            Decision::Denied { until } => {
                if let Some(tp) = &tp {
                    tp.emit(TraceEvent::AdmissionDeny {
                        principal: installer.0,
                        until: until.get(),
                    });
                }
                if let Some(mp) = &mp {
                    mp.inc(Counter::AdmissionDenies);
                }
                Err(InstallError::AdmissionDenied { principal: installer, until })
            }
        }
    }

    fn load(
        &self,
        image: &SignedImage,
        installer: PrincipalId,
        thread: ThreadId,
        opts: &InstallOpts,
    ) -> Result<SharedGraft, InstallError> {
        self.admission_gate(installer)?;
        Ok(share(load_graft(&self.engine, &self.tool, image, installer, thread, opts)?))
    }

    /// Installs a read-ahead graft on an open file (Figure 1's
    /// `ra_handle.replace(my_ra)`).
    pub fn install_ra_graft(
        &self,
        fd: vino_fs::Fd,
        image: &SignedImage,
        installer: PrincipalId,
        thread: ThreadId,
        opts: &InstallOpts,
    ) -> Result<SharedGraft, InstallError> {
        self.check_point(point_names::COMPUTE_RA, opts)?;
        let graft = self.load(image, installer, thread, opts)?;
        self.fs
            .borrow_mut()
            .set_ra_delegate(fd, Box::new(RaGraftAdapter::new(Rc::clone(&graft))))
            .map_err(|_| InstallError::NoSuchPoint(format!("open_file {fd:?}")))?;
        Ok(graft)
    }

    /// Installs a page-eviction graft on a VAS (§4.2).
    pub fn install_evict_graft(
        &self,
        vas: VasId,
        image: &SignedImage,
        installer: PrincipalId,
        thread: ThreadId,
        opts: &InstallOpts,
    ) -> Result<SharedGraft, InstallError> {
        self.check_point(point_names::PICK_VICTIM, opts)?;
        let graft = self.load(image, installer, thread, opts)?;
        self.mem
            .borrow_mut()
            .set_eviction_delegate(vas, Box::new(EvictGraftAdapter::new(Rc::clone(&graft))));
        Ok(graft)
    }

    /// Installs a schedule-delegate graft on a thread (§4.3).
    pub fn install_sched_graft(
        &self,
        target: ThreadId,
        image: &SignedImage,
        installer: PrincipalId,
        opts: &InstallOpts,
    ) -> Result<SharedGraft, InstallError> {
        self.check_point(point_names::SCHEDULE_DELEGATE, opts)?;
        let graft = self.load(image, installer, target, opts)?;
        let ok = self
            .sched
            .borrow_mut()
            .set_delegate(target, Box::new(SchedGraftAdapter::new(Rc::clone(&graft))));
        if !ok {
            return Err(InstallError::NoSuchPoint(format!("thread {target}")));
        }
        Ok(graft)
    }

    /// Installs a stream-transform graft (§4.4), returning the adapter
    /// the data path calls.
    pub fn install_stream_graft(
        &self,
        image: &SignedImage,
        installer: PrincipalId,
        thread: ThreadId,
        opts: &InstallOpts,
    ) -> Result<StreamGraftAdapter, InstallError> {
        self.check_point(point_names::STREAM_TRANSFORM, opts)?;
        let mut o = opts.clone();
        o.seg_size = o.seg_size.max(32 * 1024); // Room for 8KB in + out.
        let graft = self.load(image, installer, thread, &o)?;
        Ok(StreamGraftAdapter { instance: graft })
    }

    /// Installs onto an arbitrary *function* graft point by name —
    /// including restricted points, which demand privilege (Rule 5).
    pub fn install_function_graft(
        &self,
        point: &str,
        image: &SignedImage,
        installer: PrincipalId,
        thread: ThreadId,
        opts: &InstallOpts,
    ) -> Result<SharedGraft, InstallError> {
        match self.check_point(point, opts)? {
            PointKind::Function { .. } => {}
            PointKind::Event => return Err(InstallError::NoSuchPoint(point.to_string())),
        }
        let graft = self.load(image, installer, thread, opts)?;
        self.fn_grafts.borrow_mut().insert(point.to_string(), Rc::clone(&graft));
        Ok(graft)
    }

    /// Looks up a function graft installed by name.
    pub fn function_graft(&self, point: &str) -> Option<SharedGraft> {
        self.fn_grafts.borrow().get(point).cloned()
    }

    /// Installs a packet-filter graft for one port's RX path. The full
    /// loader pipeline applies — MiSFIT verification, quarantine and
    /// blame gates — and the graft is registered under
    /// `net/packet-filter/port-N` so diagnostics can find it. The packet
    /// plane (`vino-net`) calls this and owns the per-port dispatch.
    pub fn install_packet_filter(
        &self,
        port: Port,
        image: &SignedImage,
        installer: PrincipalId,
        thread: ThreadId,
        opts: &InstallOpts,
    ) -> Result<SharedGraft, InstallError> {
        self.check_point(point_names::PACKET_FILTER, opts)?;
        let graft = self.load(image, installer, thread, opts)?;
        self.fn_grafts
            .borrow_mut()
            .insert(format!("{}/port-{}", point_names::PACKET_FILTER, port.0), Rc::clone(&graft));
        Ok(graft)
    }

    /// Registers an event graft point for a port (e.g. TCP 80 for the
    /// HTTP server, UDP 2049 for NFS — §3.5).
    pub fn define_event_point(&self, port: Port) {
        self.namespace.borrow_mut().define(format!("net/port-{}", port.0), PointKind::Event);
        self.event_points.borrow_mut().entry(port).or_default();
    }

    /// Adds an event-handler graft for `port` with dispatch `order`.
    pub fn install_event_graft(
        &self,
        port: Port,
        order: i32,
        image: &SignedImage,
        installer: PrincipalId,
        opts: &InstallOpts,
    ) -> Result<SharedGraft, InstallError> {
        if !self.event_points.borrow().contains_key(&port) {
            return Err(InstallError::NoSuchPoint(format!("net/port-{}", port.0)));
        }
        // Each event handler gets a worker-thread identity at dispatch;
        // load it against a fresh thread id placeholder.
        let worker = self.spawn_thread(&format!("event-handler-{}", port.0));
        let graft = self.load(image, installer, worker, opts)?;
        self.event_points
            .borrow_mut()
            .get_mut(&port)
            .expect("checked")
            .add_handler(Rc::clone(&graft), order);
        Ok(graft)
    }

    /// Drains the NIC, dispatching each event to its port's handlers.
    /// "VINO spawns a worker thread and begins a transaction. It then
    /// invokes the grafted function. When the grafted function returns,
    /// the worker thread commits the transaction and exits" (§3.5) —
    /// the begin/commit lives in the wrapper each handler runs under.
    pub fn dispatch_net_events(&self) -> Vec<EventReport> {
        let mut reports = Vec::new();
        loop {
            let Some(event) = self.nic.borrow_mut().poll() else { break };
            let port = event.port();
            let mut points = self.event_points.borrow_mut();
            let Some(ep) = points.get_mut(&port) else { continue };
            let args = match &event {
                NetEvent::TcpConnect { port, conn_fd } => [port.0 as u64, *conn_fd as u64, 0, 0],
                NetEvent::UdpPacket { port, payload } => {
                    // Copy the datagram into each handler's shared
                    // region is handler-specific; pass length and let
                    // handlers fetch via their shared buffer.
                    [port.0 as u64, payload.len() as u64, 0, 0]
                }
            };
            // For UDP, marshal the payload into every handler segment.
            if let NetEvent::UdpPacket { payload, .. } = &event {
                ep.for_each_handler(|g| {
                    let mut inst = g.borrow_mut();
                    let n = payload.len().min(2048);
                    if let Some(buf) = inst.mem().graft_bytes_mut(APP_BUF, n) {
                        buf.copy_from_slice(&payload[..n]);
                    }
                });
            }
            let handlers = ep.dispatch(args);
            ep.reap_dead();
            reports.push(EventReport { port, handlers });
        }
        reports
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vino_fs::layout::BLOCK_SIZE;
    use vino_rm::ResourceKind;

    fn boot() -> Rc<Kernel> {
        Kernel::boot()
    }

    fn app(k: &Kernel) -> PrincipalId {
        k.create_app(Limits::of(&[
            (ResourceKind::KernelHeap, 1 << 20),
            (ResourceKind::Memory, 1 << 24),
        ]))
    }

    #[test]
    fn boot_registers_standard_points() {
        let k = boot();
        let ns = k.namespace();
        assert_eq!(
            ns.lookup(point_names::COMPUTE_RA),
            Some(PointKind::Function { restricted: false })
        );
        assert_eq!(
            ns.lookup(point_names::GLOBAL_SCHEDULER),
            Some(PointKind::Function { restricted: true })
        );
    }

    #[test]
    fn ra_graft_full_pipeline() {
        let k = boot();
        let a = app(&k);
        let t = k.spawn_thread("app");
        k.fs.borrow_mut().create("db", 64 * BLOCK_SIZE as u64).unwrap();
        let fd = k.fs.borrow_mut().open("db").unwrap();
        // Graft: always prefetch the block after the read.
        let image = k
            .compile_graft(
                "next-block-ra",
                "
                add r1, r1, r2
                const r2, 4096
                call $ra_submit
                halt r0
                ",
            )
            .unwrap();
        k.install_ra_graft(fd, &image, a, t, &InstallOpts::default()).unwrap();
        assert!(k.fs.borrow().has_ra_delegate(fd));
        k.fs.borrow_mut().read(fd, 0, 4096).unwrap();
        assert_eq!(k.fs.borrow().stats().ra_graft_calls, 1);
        assert_eq!(k.fs.borrow().stats().prefetches_issued, 1);
    }

    #[test]
    fn restricted_point_requires_privilege() {
        let k = boot();
        let a = app(&k);
        let t = k.spawn_thread("app");
        let image = k.compile_graft("biased-sched", "halt r1").unwrap();
        // Unprivileged install: refused (the §2.3 attack).
        let err = k
            .install_function_graft(
                point_names::GLOBAL_SCHEDULER,
                &image,
                a,
                t,
                &InstallOpts::default(),
            )
            .unwrap_err();
        assert!(matches!(err, InstallError::Restricted { .. }));
        // Privileged install: accepted.
        let opts = InstallOpts { privileged: true, ..InstallOpts::default() };
        k.install_function_graft(point_names::GLOBAL_SCHEDULER, &image, a, t, &opts).unwrap();
        assert!(k.function_graft(point_names::GLOBAL_SCHEDULER).is_some());
    }

    #[test]
    fn unknown_point_rejected() {
        let k = boot();
        let a = app(&k);
        let t = k.spawn_thread("app");
        let image = k.compile_graft("g", "halt r0").unwrap();
        let err = k
            .install_function_graft("kernel/nonexistent", &image, a, t, &InstallOpts::default())
            .unwrap_err();
        assert!(matches!(err, InstallError::NoSuchPoint(_)));
    }

    #[test]
    fn event_grafts_dispatch_on_tcp_connect() {
        // Figure 2's HTTP server: a handler on TCP port 80 that records
        // the connection fd it served into kernel state.
        let k = boot();
        let a = app(&k);
        k.define_event_point(Port(80));
        let image = k
            .compile_graft(
                "http-server",
                "
                ; r1 = port, r2 = conn fd. Serve: kv[10] = fd.
                const r1, 10
                call $kv_set   ; note: r2 already holds the fd
                halt r2
                ",
            )
            .unwrap();
        k.install_event_graft(Port(80), 0, &image, a, &InstallOpts::default()).unwrap();
        let fd = k.nic.borrow_mut().inject_tcp_connect(Port(80)).unwrap();
        let reports = k.dispatch_net_events();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].handlers.len(), 1);
        assert_eq!(k.engine.kv_read(10), fd as u64);
    }

    #[test]
    fn misbehaving_event_handler_unloaded_but_events_flow() {
        let k = boot();
        let a = app(&k);
        k.define_event_point(Port(80));
        let bad = k.compile_graft("bad", "const r1, 0\ndiv r0, r1, r1\nhalt r0").unwrap();
        let good =
            k.compile_graft("good", "const r1, 11\nconst r2, 1\ncall $kv_set\nhalt r0").unwrap();
        k.install_event_graft(Port(80), 0, &bad, a, &InstallOpts::default()).unwrap();
        k.install_event_graft(Port(80), 1, &good, a, &InstallOpts::default()).unwrap();
        k.nic.borrow_mut().inject_tcp_connect(Port(80));
        let reports = k.dispatch_net_events();
        assert_eq!(reports[0].handlers.len(), 2, "both handlers consulted");
        // The bad handler died; only the good one remains for event 2.
        k.nic.borrow_mut().inject_tcp_connect(Port(80));
        let reports = k.dispatch_net_events();
        assert_eq!(reports[0].handlers.len(), 1);
        assert_eq!(reports[0].handlers[0].graft, "good");
    }

    #[test]
    fn repeated_aborts_quarantine_reinstall_until_backoff() {
        // The reliability tentpole, end to end through the kernel: a
        // graft that keeps trapping is refused reinstall after the
        // third abort, and accepted again once the backoff expires.
        let k = boot();
        let a = app(&k);
        let t = k.spawn_thread("app");
        let image = k.compile_graft("crasher", "const r1, 0\ndiv r0, r1, r1\nhalt r0").unwrap();
        for _ in 0..3 {
            let g = k
                .install_function_graft(
                    point_names::COMPUTE_RA,
                    &image,
                    a,
                    t,
                    &InstallOpts::default(),
                )
                .unwrap();
            let out = g.borrow_mut().invoke([0; 4]);
            assert!(matches!(out, crate::engine::InvokeOutcome::Aborted { .. }));
        }
        let err = k
            .install_function_graft(point_names::COMPUTE_RA, &image, a, t, &InstallOpts::default())
            .unwrap_err();
        let InstallError::Quarantined { graft, until } = err else {
            panic!("expected quarantine, got {err}");
        };
        assert_eq!(graft, "crasher");
        assert_eq!(k.reliability().ledger("crasher").unwrap().episodes, 1);

        // Quarantine expires by the virtual clock; reinstall succeeds.
        k.clock.advance_to(until);
        k.install_function_graft(point_names::COMPUTE_RA, &image, a, t, &InstallOpts::default())
            .expect("backoff passed, reinstall permitted");
    }

    #[test]
    fn blame_ceiling_blocks_installer() {
        let k = boot();
        let a = app(&k);
        let t = k.spawn_thread("app");
        k.engine.rm.borrow_mut().set_blame_limit(a, 1);
        let image = k.compile_graft("crasher", "const r1, 0\ndiv r0, r1, r1\nhalt r0").unwrap();
        let g = k
            .install_function_graft(point_names::COMPUTE_RA, &image, a, t, &InstallOpts::default())
            .unwrap();
        g.borrow_mut().invoke([0; 4]);
        assert!(k.engine.rm.borrow().blame(a) > 0, "abort cost billed to the installer");
        let err = k
            .install_function_graft(point_names::COMPUTE_RA, &image, a, t, &InstallOpts::default())
            .unwrap_err();
        assert!(matches!(err, InstallError::BlameExceeded { principal } if principal == a));
    }

    #[test]
    fn attached_fault_plane_reaches_graft_vms() {
        use vino_sim::fault::{FaultPlane, FaultSite};
        let k = boot();
        let a = app(&k);
        let t = k.spawn_thread("app");
        let plane = FaultPlane::seeded(42);
        plane.arm(FaultSite::VmTrap, 2);
        k.attach_fault_plane(plane).unwrap();
        let image = k.compile_graft("victim", "const r1, 1\nconst r2, 2\nhalt r0").unwrap();
        let g = k
            .install_function_graft(point_names::COMPUTE_RA, &image, a, t, &InstallOpts::default())
            .unwrap();
        let out = g.borrow_mut().invoke([0; 4]);
        assert!(
            matches!(
                &out,
                crate::engine::InvokeOutcome::Aborted {
                    why: crate::engine::AbortedWhy::Trap(vino_vm::interp::Trap::Injected { .. }),
                    ..
                }
            ),
            "armed VmTrap fault fired inside the graft: {out:?}"
        );
        assert_eq!(
            k.reliability()
                .ledger("victim")
                .unwrap()
                .count(crate::reliability::FailureKind::InjectedFault),
            1,
            "injected fault ledgered"
        );
    }

    #[test]
    fn attach_planes_error_on_double_attach() {
        use vino_sim::fault::FaultPlane;
        use vino_sim::trace::TracePlane;
        let k = boot();
        k.attach_fault_plane(FaultPlane::seeded(1)).unwrap();
        assert_eq!(
            k.attach_fault_plane(FaultPlane::seeded(2)).unwrap_err(),
            AttachError::AlreadyAttached
        );
        let tp = TracePlane::new(Rc::clone(&k.clock));
        k.attach_trace_plane(Rc::clone(&tp)).unwrap();
        assert_eq!(k.attach_trace_plane(tp).unwrap_err(), AttachError::AlreadyAttached);
        let mp = vino_sim::metrics::MetricsPlane::new(Rc::clone(&k.clock));
        assert!(k.metrics().is_none(), "no metrics plane before attach");
        k.attach_metrics_plane(Rc::clone(&mp)).unwrap();
        assert_eq!(
            k.attach_metrics_plane(Rc::clone(&mp)).unwrap_err(),
            AttachError::AlreadyAttached
        );
        assert!(
            Rc::ptr_eq(&k.metrics().expect("attached"), &mp),
            "Kernel::metrics returns the attached plane"
        );
        let pp = vino_sim::profile::ProfilePlane::new(Rc::clone(&k.clock));
        assert!(k.profile().is_none(), "no profile plane before attach");
        k.attach_profile_plane(Rc::clone(&pp)).unwrap();
        assert_eq!(
            k.attach_profile_plane(Rc::clone(&pp)).unwrap_err(),
            AttachError::AlreadyAttached
        );
        assert!(
            Rc::ptr_eq(&k.profile().expect("attached"), &pp),
            "Kernel::profile returns the attached plane"
        );
    }

    #[test]
    fn attached_trace_plane_feeds_post_mortem() {
        use vino_sim::trace::{AbortKind, TracePlane};
        let k = boot();
        let a = app(&k);
        let t = k.spawn_thread("app");
        let tp = TracePlane::new(Rc::clone(&k.clock));
        k.attach_trace_plane(Rc::clone(&tp)).unwrap();
        assert!(k.post_mortem().is_none(), "no aborts yet, no post-mortem");
        // A graft that traps (div by zero) — one invocation, one abort.
        let image = k.compile_graft("crasher", "const r1, 0\ndiv r0, r1, r1\nhalt r0").unwrap();
        let g = k
            .install_function_graft(point_names::COMPUTE_RA, &image, a, t, &InstallOpts::default())
            .unwrap();
        g.borrow_mut().invoke([0; 4]);
        let pm = k.post_mortem().expect("abort produced a post-mortem");
        assert_eq!(pm.graft, "crasher");
        assert_eq!(pm.kind, AbortKind::Trap);
        assert!(
            pm.lines.iter().any(|l| l.contains("graft.abort")),
            "flight recorder window holds the abort event: {:#?}",
            pm.lines
        );
    }

    #[test]
    fn evict_graft_pipeline() {
        let k = boot();
        let a = app(&k);
        let t = k.spawn_thread("app");
        let vas = k.mem.borrow_mut().create_vas();
        // Graft: accept the victim (echo r1).
        let image = k.compile_graft("accept", "mov r0, r1\nhalt r0").unwrap();
        k.install_evict_graft(vas, &image, a, t, &InstallOpts::default()).unwrap();
        k.mem.borrow_mut().touch(vas, 0);
        k.mem.borrow_mut().touch(vas, 1);
        let (_, outcome) = k.mem.borrow_mut().evict_one().unwrap();
        assert_eq!(outcome, vino_mem::EvictOutcome::GraftAgreed);
    }

    #[test]
    fn sched_graft_pipeline() {
        let k = boot();
        let a = app(&k);
        let ui = k.spawn_thread("ui");
        let video = k.spawn_thread("video");
        // Graft: return runnable[1] (the second thread).
        let image = k
            .compile_graft(
                "handoff",
                "
                call $shared_base
                mov r5, r0
                loadw r0, [r5+12]
                halt r0
                ",
            )
            .unwrap();
        k.install_sched_graft(ui, &image, a, &InstallOpts::default()).unwrap();
        let (winner, _) = k.sched.borrow_mut().pick_and_switch().unwrap();
        assert_eq!(winner, video, "UI thread donated its slice");
    }

    #[test]
    fn stream_graft_pipeline() {
        let k = boot();
        let a = app(&k);
        let t = k.spawn_thread("app");
        let image = k
            .compile_graft(
                "xor-crypt",
                "
                const r4, 0
                const r5, 0xFF
                loop:
                bgeu r4, r3, done
                add r6, r1, r4
                loadb r7, [r6+0]
                xor r7, r7, r5
                add r6, r2, r4
                storeb r7, [r6+0]
                addi r4, r4, 1
                jmp loop
                done: halt r0
                ",
            )
            .unwrap();
        let mut stream = k.install_stream_graft(&image, a, t, &InstallOpts::default()).unwrap();
        let out = stream.transform(b"attack at dawn").unwrap();
        let back: Vec<u8> = out.iter().map(|b| b ^ 0xFF).collect();
        assert_eq!(back, b"attack at dawn");
    }
}

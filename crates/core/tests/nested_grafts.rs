//! Graft-to-graft invocation and nested transactions (§3.1).
//!
//! "Because graft functions may indirectly invoke other grafts, we
//! found it necessary to include support for nested transactions. In
//! this manner, any graft can abort without aborting its calling
//! graft." These tests drive the `call_graft` kernel function through
//! the full pipeline and verify the nesting laws end-to-end.

use std::rc::Rc;

use vino_core::adapters::share;
use vino_core::engine::{
    errcode, CommitMode, GraftEngine, GraftInstance, InvokeOutcome, CALLEE_ABORTED,
};
use vino_core::hostfn;
use vino_sim::{ThreadId, VirtualClock};
use vino_vm::asm::assemble;
use vino_vm::mem::{AddressSpace, Protection};

const T: ThreadId = ThreadId(1);

fn instance(engine: &Rc<GraftEngine>, name: &str, src: &str) -> GraftInstance {
    let prog = assemble(name, src, &hostfn::symbols()).unwrap();
    let principal = engine.rm.borrow_mut().create_graft_principal();
    let mem = AddressSpace::new(4096, 256, Protection::Sfi);
    GraftInstance::new(Rc::clone(engine), prog, mem, T, principal)
}

#[test]
fn caller_invokes_callee_and_gets_result() {
    let engine = GraftEngine::new(VirtualClock::new());
    // Callee: returns r1 + r2.
    let callee = share(instance(&engine, "adder", "add r0, r1, r2\nhalt r0"));
    let h = engine.register_subgraft(callee);
    // Caller: call_graft(handle, 40, 2).
    let mut caller = instance(
        &engine,
        "caller",
        &format!("const r1, {h}\nconst r2, 40\nconst r3, 2\ncall $call_graft\nhalt r0"),
    );
    match caller.invoke([0; 4]) {
        InvokeOutcome::Ok { result, .. } => assert_eq!(result, 42),
        other => panic!("{other:?}"),
    }
    // Two begins, one nested commit, one top-level commit.
    let stats = engine.txn.borrow().stats();
    assert_eq!(stats.begins, 2);
    assert_eq!(stats.nested_commits, 1);
    assert_eq!(stats.commits, 1);
}

#[test]
fn callee_abort_spares_the_caller() {
    let engine = GraftEngine::new(VirtualClock::new());
    // Callee: mutates slot 5 then traps.
    let callee = share(instance(
        &engine,
        "crasher",
        "
        const r1, 5
        const r2, 99
        call $kv_set
        const r3, 0
        div r0, r3, r3
        halt r0
        ",
    ));
    let h = engine.register_subgraft(Rc::clone(&callee));
    // Caller: mutates slot 4, calls the crasher, logs the sentinel,
    // keeps going.
    let mut caller = instance(
        &engine,
        "caller",
        &format!(
            "
            const r1, 4
            const r2, 7
            call $kv_set
            const r1, {h}
            call $call_graft
            mov r1, r0
            call $log
            halt r0
            "
        ),
    );
    engine.kv_write(5, 11);
    match caller.invoke([0; 4]) {
        InvokeOutcome::Ok { result: _, log, .. } => {
            assert_eq!(log, vec![CALLEE_ABORTED], "caller saw the abort sentinel");
        }
        other => panic!("caller must survive: {other:?}"),
    }
    assert_eq!(engine.kv_read(5), 11, "callee's mutation undone");
    assert_eq!(engine.kv_read(4), 7, "caller's mutation committed");
    assert!(callee.borrow().is_dead(), "callee forcibly unloaded");
}

#[test]
fn caller_abort_reverses_committed_callee_work() {
    // The nested-commit merge: the callee's undo records fold into the
    // caller's transaction, so a later caller abort reverses them too.
    let engine = GraftEngine::new(VirtualClock::new());
    let callee =
        share(instance(&engine, "writer", "const r1, 9\nconst r2, 1\ncall $kv_set\nhalt r0"));
    let h = engine.register_subgraft(callee);
    let mut caller =
        instance(&engine, "caller", &format!("const r1, {h}\ncall $call_graft\nhalt r0"));
    engine.kv_write(9, 5);
    match caller.invoke_mode([0; 4], CommitMode::AbortAtEnd) {
        InvokeOutcome::Aborted { report, .. } => {
            assert_eq!(report.undo_ops, 1, "the callee's undo merged into the caller");
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(engine.kv_read(9), 5, "callee's committed-to-parent work reversed");
}

#[test]
fn unknown_handle_traps_caller() {
    let engine = GraftEngine::new(VirtualClock::new());
    let mut caller = instance(&engine, "caller", "const r1, 999\ncall $call_graft\nhalt r0");
    match caller.invoke([0; 4]) {
        InvokeOutcome::Aborted { why, .. } => {
            assert!(format!("{why:?}").contains(&errcode::BAD_GRAFT.to_string()));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn self_recursion_is_refused() {
    let engine = GraftEngine::new(VirtualClock::new());
    // The graft calls itself through its own handle.
    let myself = share(instance(&engine, "ouroboros", "const r1, 0\ncall $call_graft\nhalt r0"));
    let h = engine.register_subgraft(Rc::clone(&myself));
    assert_eq!(h, 0);
    let out = myself.borrow_mut().invoke([0; 4]);
    match out {
        InvokeOutcome::Aborted { why, .. } => {
            assert!(format!("{why:?}").contains(&errcode::GRAFT_RECURSION.to_string()));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn nesting_depth_is_bounded() {
    // A chain of grafts each calling the next; past MAX_NEST_DEPTH the
    // kernel refuses.
    let engine = GraftEngine::new(VirtualClock::new());
    // Build a chain of 12: graft i calls handle i+1; the last halts.
    let mut handles = Vec::new();
    let leaf = share(instance(&engine, "leaf", "const r0, 1\nhalt r0"));
    handles.push(engine.register_subgraft(leaf));
    for i in 0..12 {
        let next = handles[i];
        let g = share(instance(
            &engine,
            "link",
            &format!("const r1, {next}\ncall $call_graft\nhalt r0"),
        ));
        handles.push(engine.register_subgraft(g));
    }
    // Invoke the head of the chain.
    let head = engine_subgraft_for_test(&engine, *handles.last().unwrap());
    let out = head.borrow_mut().invoke([0; 4]);
    // Somewhere down the chain the depth bound fires; the head aborts
    // with the trap or observes a CALLEE_ABORTED sentinel — either way
    // the kernel survived and no stack overflowed.
    match out {
        InvokeOutcome::Ok { result, .. } => assert_eq!(result, CALLEE_ABORTED),
        InvokeOutcome::Aborted { .. } => {}
        InvokeOutcome::Dead => panic!("head cannot be dead before first call"),
    }
}

#[test]
fn post_mortem_empty_after_clean_commit() {
    use vino_sim::trace::TracePlane;
    let engine = GraftEngine::new(VirtualClock::new());
    let tp = TracePlane::new(Rc::clone(&engine.clock));
    engine.set_trace_plane(Rc::clone(&tp));
    let mut g = instance(&engine, "clean", "const r0, 7\nhalt r0");
    assert!(matches!(g.invoke([0; 4]), InvokeOutcome::Ok { result: 7, .. }));
    assert!(tp.post_mortem().is_none(), "clean commit leaves no post-mortem");
}

#[test]
fn post_mortem_captures_nested_transaction_abort() {
    use vino_sim::trace::{AbortKind, TracePlane};
    let engine = GraftEngine::new(VirtualClock::new());
    let tp = TracePlane::new(Rc::clone(&engine.clock));
    engine.set_trace_plane(Rc::clone(&tp));
    // Engine-level test: wire the txn manager by hand (the kernel's
    // attach_trace_plane does this when booting the full stack).
    engine.txn.borrow_mut().set_trace_plane(Rc::clone(&tp));
    // Callee: one undoable kv write, then a trap — its nested wrapper
    // transaction aborts while the caller's survives.
    let callee = share(instance(
        &engine,
        "crasher",
        "
        const r1, 5
        const r2, 99
        call $kv_set
        const r3, 0
        div r0, r3, r3
        halt r0
        ",
    ));
    let h = engine.register_subgraft(Rc::clone(&callee));
    let mut caller =
        instance(&engine, "caller", &format!("const r1, {h}\ncall $call_graft\nhalt r0"));
    match caller.invoke([0; 4]) {
        InvokeOutcome::Ok { .. } => {}
        other => panic!("caller must survive the nested abort: {other:?}"),
    }
    let pm = tp.post_mortem().expect("nested abort snapshotted by the flight recorder");
    assert_eq!(pm.graft, "crasher", "post-mortem names the nested callee, not the caller");
    assert_eq!(pm.kind, AbortKind::Trap);
    assert_eq!(pm.undo_depth, 1, "the callee's kv_set was the one undo op");
    assert_eq!(pm.held_locks, 0);
    assert!(
        pm.lines.iter().any(|l| l.contains("txn.begin") && l.contains("depth=2")),
        "window shows the nested begin: {:#?}",
        pm.lines
    );
    assert!(
        pm.lines.iter().any(|l| l.contains("txn.undo-run thread=1 ops=1")),
        "window shows the undo run: {:#?}",
        pm.lines
    );
    assert!(
        pm.lines.iter().any(|l| l.contains("graft.abort g=crasher kind=trap")),
        "window shows the abort itself: {:#?}",
        pm.lines
    );
}

/// Test-only accessor: re-fetch a registered subgraft by handle. (The
/// engine does not expose enumeration; tests register and remember.)
fn engine_subgraft_for_test(
    engine: &Rc<GraftEngine>,
    handle: u64,
) -> Rc<std::cell::RefCell<GraftInstance>> {
    // register_subgraft pushes in order; rebuild by registering a probe
    // is not possible, so reach through a helper on the engine.
    engine.subgraft_handle_for_tests(handle).expect("registered")
}

//! Differential testing for the GraftC compiler, driven by a seeded
//! deterministic generator (formerly proptest): random expression
//! programs are evaluated by a reference AST interpreter and by the
//! compiled GraftVM code (raw *and* MiSFIT-instrumented); all three
//! must agree. Miscompilation — silent wrong answers inside the kernel
//! — is the worst failure mode a graft toolchain can have.

use vino_core::graftc::ast::{BinOp, Expr, Function, Stmt};
use vino_core::graftc::codegen::compile;
use vino_sim::{SplitMix64, VirtualClock};
use vino_vm::interp::{Exit, NullKernel, Vm};
use vino_vm::mem::{AddressSpace, Protection};

/// Reference evaluator over two parameters.
fn eval(e: &Expr, a: u64, b: u64) -> Option<u64> {
    Some(match e {
        Expr::Int(v) => *v,
        Expr::Var(name) => {
            if name == "a" {
                a
            } else {
                b
            }
        }
        Expr::Neg(x) => eval(x, a, b)?.wrapping_neg(),
        Expr::Not(x) => (eval(x, a, b)? == 0) as u64,
        Expr::Mem(_) | Expr::Call { .. } => unreachable!("not generated"),
        Expr::Bin { op, lhs, rhs } => {
            let l = eval(lhs, a, b)?;
            let r = eval(rhs, a, b)?;
            match op {
                BinOp::Add => l.wrapping_add(r),
                BinOp::Sub => l.wrapping_sub(r),
                BinOp::Mul => l.wrapping_mul(r),
                BinOp::Div => l.checked_div(r)?,
                BinOp::Rem => l.checked_rem(r)?,
                BinOp::And => l & r,
                BinOp::Or => l | r,
                BinOp::Xor => l ^ r,
                BinOp::Shl => l << (r & 63),
                BinOp::Shr => l >> (r & 63),
                BinOp::Eq => (l == r) as u64,
                BinOp::Ne => (l != r) as u64,
                BinOp::Lt => (l < r) as u64,
                BinOp::Le => (l <= r) as u64,
                BinOp::Gt => (l > r) as u64,
                BinOp::Ge => (l >= r) as u64,
            }
        }
    })
}

const BIN_OPS: &[BinOp] = &[
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
];

fn gen_leaf(rng: &mut SplitMix64) -> Expr {
    match rng.below(3) {
        0 => Expr::Int(rng.below(1000)),
        1 => Expr::Var("a".to_string()),
        _ => Expr::Var("b".to_string()),
    }
}

/// Expressions over vars `a`/`b`, bounded so the codegen temp stack
/// (depth 4) always suffices: right operands are leaves.
fn gen_expr(rng: &mut SplitMix64, depth: u32) -> Expr {
    if depth == 0 {
        return gen_leaf(rng);
    }
    match rng.below(4) {
        0 => gen_leaf(rng),
        1 => Expr::Bin {
            op: BIN_OPS[rng.below(BIN_OPS.len() as u64) as usize],
            lhs: Box::new(gen_expr(rng, depth - 1)),
            rhs: Box::new(gen_leaf(rng)),
        },
        2 => Expr::Neg(Box::new(gen_expr(rng, depth - 1))),
        _ => Expr::Not(Box::new(gen_expr(rng, depth - 1))),
    }
}

fn run_compiled(prog: &vino_vm::isa::Program, a: u64, b: u64) -> Option<u64> {
    let mem = AddressSpace::new(1024, 64, Protection::Sfi);
    let mut vm = Vm::new(mem);
    vm.regs[1] = a;
    vm.regs[2] = b;
    let clock = VirtualClock::new();
    let mut fuel = 1_000_000;
    match vm.run(prog, &mut NullKernel, &clock, &mut fuel) {
        Exit::Halted(v) => Some(v),
        Exit::Trapped(vino_vm::interp::Trap::DivByZero) => None,
        other => panic!("unexpected exit: {other:?}"),
    }
}

/// compiled(raw) == compiled(instrumented) == interpreted, for any
/// expression and any inputs; division by zero traps exactly when the
/// reference evaluator says so.
#[test]
fn compiler_matches_reference() {
    let mut rng = SplitMix64::new(0xD1FF0C0);
    for _case in 0..512 {
        let e = gen_expr(&mut rng, 6);
        let a = rng.next_u64();
        let b = rng.next_u64();
        let f = Function {
            params: vec!["a".to_string(), "b".to_string()],
            body: vec![Stmt::Return(e.clone())],
        };
        let prog = compile("diff", &f).expect("bounded exprs always compile");
        let expected = eval(&e, a, b);
        let raw = run_compiled(&prog, a, b);
        assert_eq!(raw, expected, "raw codegen mismatch on {e:?}");
        let (inst, _) = vino_misfit::instrument(&prog).expect("instruments");
        let sfi = run_compiled(&inst, a, b);
        assert_eq!(sfi, expected, "instrumented codegen mismatch on {e:?}");
    }
}

/// Loop semantics: compiled countdown loops terminate with the
/// reference value for arbitrary small bounds.
#[test]
fn loops_match_reference() {
    let mut rng = SplitMix64::new(0x10095);
    for _case in 0..128 {
        let n = rng.below(200);
        let step = rng.range(1, 4);
        let f = Function {
            params: vec!["a".to_string(), "b".to_string()],
            body: vec![
                Stmt::Let { name: "acc".to_string(), value: Expr::Int(0) },
                Stmt::While {
                    cond: Expr::Bin {
                        op: BinOp::Lt,
                        lhs: Box::new(Expr::Var("acc".to_string())),
                        rhs: Box::new(Expr::Var("a".to_string())),
                    },
                    body: vec![Stmt::Assign {
                        name: "acc".to_string(),
                        value: Expr::Bin {
                            op: BinOp::Add,
                            lhs: Box::new(Expr::Var("acc".to_string())),
                            rhs: Box::new(Expr::Var("b".to_string())),
                        },
                    }],
                },
                Stmt::Return(Expr::Var("acc".to_string())),
            ],
        };
        let prog = compile("loop", &f).unwrap();
        let got = run_compiled(&prog, n, step).unwrap();
        // Reference: smallest multiple of `step` that is >= n.
        let expect = n.div_ceil(step) * step;
        assert_eq!(got, expect);
    }
}

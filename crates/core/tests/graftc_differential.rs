//! Differential testing for the GraftC compiler: random expression
//! programs are evaluated by a reference AST interpreter and by the
//! compiled GraftVM code (raw *and* MiSFIT-instrumented); all three
//! must agree. Miscompilation — silent wrong answers inside the kernel
//! — is the worst failure mode a graft toolchain can have.

use proptest::prelude::*;

use vino_core::graftc::ast::{BinOp, Expr, Function, Stmt};
use vino_core::graftc::codegen::compile;
use vino_sim::VirtualClock;
use vino_vm::interp::{Exit, NullKernel, Vm};
use vino_vm::mem::{AddressSpace, Protection};

/// Reference evaluator over two parameters.
fn eval(e: &Expr, a: u64, b: u64) -> Option<u64> {
    Some(match e {
        Expr::Int(v) => *v,
        Expr::Var(name) => {
            if name == "a" {
                a
            } else {
                b
            }
        }
        Expr::Neg(x) => eval(x, a, b)?.wrapping_neg(),
        Expr::Not(x) => (eval(x, a, b)? == 0) as u64,
        Expr::Mem(_) | Expr::Call { .. } => unreachable!("not generated"),
        Expr::Bin { op, lhs, rhs } => {
            let l = eval(lhs, a, b)?;
            let r = eval(rhs, a, b)?;
            match op {
                BinOp::Add => l.wrapping_add(r),
                BinOp::Sub => l.wrapping_sub(r),
                BinOp::Mul => l.wrapping_mul(r),
                BinOp::Div => l.checked_div(r)?,
                BinOp::Rem => l.checked_rem(r)?,
                BinOp::And => l & r,
                BinOp::Or => l | r,
                BinOp::Xor => l ^ r,
                BinOp::Shl => l << (r & 63),
                BinOp::Shr => l >> (r & 63),
                BinOp::Eq => (l == r) as u64,
                BinOp::Ne => (l != r) as u64,
                BinOp::Lt => (l < r) as u64,
                BinOp::Le => (l <= r) as u64,
                BinOp::Gt => (l > r) as u64,
                BinOp::Ge => (l >= r) as u64,
            }
        }
    })
}

fn bin_op() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ]
}

/// Expressions over vars `a`/`b`, bounded so the codegen temp stack
/// (depth 4) always suffices: right operands are leaves.
fn expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0u64..1000).prop_map(Expr::Int),
        Just(Expr::Var("a".to_string())),
        Just(Expr::Var("b".to_string())),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        let inner = expr(depth - 1);
        let leaf2 = prop_oneof![
            (0u64..1000).prop_map(Expr::Int),
            Just(Expr::Var("a".to_string())),
            Just(Expr::Var("b".to_string())),
        ];
        prop_oneof![
            leaf,
            (bin_op(), inner.clone(), leaf2).prop_map(|(op, lhs, rhs)| Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            }),
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
        .boxed()
    }
}

fn run_compiled(prog: &vino_vm::isa::Program, a: u64, b: u64) -> Option<u64> {
    let mem = AddressSpace::new(1024, 64, Protection::Sfi);
    let mut vm = Vm::new(mem);
    vm.regs[1] = a;
    vm.regs[2] = b;
    let clock = VirtualClock::new();
    let mut fuel = 1_000_000;
    match vm.run(prog, &mut NullKernel, &clock, &mut fuel) {
        Exit::Halted(v) => Some(v),
        Exit::Trapped(vino_vm::interp::Trap::DivByZero) => None,
        other => panic!("unexpected exit: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// compiled(raw) == compiled(instrumented) == interpreted, for any
    /// expression and any inputs; division by zero traps exactly when
    /// the reference evaluator says so.
    #[test]
    fn compiler_matches_reference(e in expr(6), a in any::<u64>(), b in any::<u64>()) {
        let f = Function {
            params: vec!["a".to_string(), "b".to_string()],
            body: vec![Stmt::Return(e.clone())],
        };
        let prog = compile("diff", &f).expect("bounded exprs always compile");
        let expected = eval(&e, a, b);
        let raw = run_compiled(&prog, a, b);
        prop_assert_eq!(raw, expected, "raw codegen mismatch on {:?}", e);
        let (inst, _) = vino_misfit::instrument(&prog).expect("instruments");
        let sfi = run_compiled(&inst, a, b);
        prop_assert_eq!(sfi, expected, "instrumented codegen mismatch on {:?}", e);
    }

    /// Loop semantics: compiled countdown loops terminate with the
    /// reference value for arbitrary small bounds.
    #[test]
    fn loops_match_reference(n in 0u64..200, step in 1u64..5) {
        let f = Function {
            params: vec!["a".to_string(), "b".to_string()],
            body: vec![
                Stmt::Let { name: "acc".to_string(), value: Expr::Int(0) },
                Stmt::While {
                    cond: Expr::Bin {
                        op: BinOp::Lt,
                        lhs: Box::new(Expr::Var("acc".to_string())),
                        rhs: Box::new(Expr::Var("a".to_string())),
                    },
                    body: vec![Stmt::Assign {
                        name: "acc".to_string(),
                        value: Expr::Bin {
                            op: BinOp::Add,
                            lhs: Box::new(Expr::Var("acc".to_string())),
                            rhs: Box::new(Expr::Var("b".to_string())),
                        },
                    }],
                },
                Stmt::Return(Expr::Var("acc".to_string())),
            ],
        };
        let prog = compile("loop", &f).unwrap();
        let got = run_compiled(&prog, n, step).unwrap();
        // Reference: smallest multiple of `step` that is >= n.
        let expect = n.div_ceil(step) * step;
        prop_assert_eq!(got, expect);
    }
}

//! Edge-case coverage for the graft engine: unlock semantics, repeated
//! invocation state, kfree, stats accumulation, and wrapper cost
//! accounting under preemption.

use std::rc::Rc;

use vino_core::engine::{GraftEngine, GraftInstance, InvokeOutcome};
use vino_core::hostfn;
use vino_rm::{Limits, ResourceKind};
use vino_sim::{costs, ThreadId, VirtualClock};
use vino_txn::locks::LockClass;
use vino_vm::asm::assemble;
use vino_vm::mem::{AddressSpace, Protection};

const T: ThreadId = ThreadId(3);

fn engine() -> Rc<GraftEngine> {
    GraftEngine::new(VirtualClock::new())
}

fn instance(e: &Rc<GraftEngine>, src: &str) -> GraftInstance {
    let prog = assemble("edge", src, &hostfn::symbols()).unwrap();
    let principal = e.rm.borrow_mut().create_graft_principal();
    let mem = AddressSpace::new(4096, 256, Protection::Sfi);
    GraftInstance::new(Rc::clone(e), prog, mem, T, principal)
}

#[test]
fn unlock_of_unknown_handle_traps() {
    let e = engine();
    let mut g = instance(&e, "const r1, 77\ncall $unlock\nhalt r0");
    assert!(matches!(g.invoke([0; 4]), InvokeOutcome::Aborted { .. }));
}

#[test]
fn lock_unlock_pair_within_transaction_defers() {
    let e = engine();
    let (_, lock_id) = e.register_lock(LockClass::Buffer);
    let mut g = instance(
        &e,
        "
        const r1, 0
        call $lock
        const r1, 0
        call $unlock      ; deferred by two-phase locking
        call $kv_get      ; r1 = 0: read something while 'unlocked'
        halt r0
        ",
    );
    // During the run the lock must remain held until commit; after the
    // commit it is free. Verify the end state.
    assert!(matches!(g.invoke([0; 4]), InvokeOutcome::Ok { .. }));
    assert_eq!(e.txn.borrow().lock_table().holder(lock_id), None);
}

#[test]
fn repeated_invocations_accumulate_stats_and_share_memory() {
    let e = engine();
    // Graft: increment a counter it keeps in its own segment at off 64.
    let mut g = instance(
        &e,
        "
        call $shared_base
        mov r5, r0
        loadw r6, [r5+64]
        addi r6, r6, 1
        storew r6, [r5+64]
        halt r6
        ",
    );
    for i in 1..=5u64 {
        match g.invoke([0; 4]) {
            InvokeOutcome::Ok { result, .. } => assert_eq!(result, i, "graft memory persists"),
            other => panic!("{other:?}"),
        }
    }
    let s = g.stats();
    assert_eq!(s.invocations, 5);
    assert_eq!(s.commits, 5);
    assert_eq!(s.aborts, 0);
}

#[test]
fn kfree_returns_headroom_for_later_allocations() {
    let e = engine();
    let installer =
        e.rm.borrow_mut().create_principal(Limits::of(&[(ResourceKind::KernelHeap, 1000)]));
    let mut g = instance(
        &e,
        "
        const r1, 1000
        call $kalloc
        const r1, 1000
        call $kfree
        const r1, 1000
        call $kalloc     ; only fits because kfree returned the headroom
        halt r0
        ",
    );
    e.rm.borrow_mut().transfer(installer, g.principal, ResourceKind::KernelHeap, 1000).unwrap();
    assert!(matches!(g.invoke([0; 4]), InvokeOutcome::Ok { .. }));
}

#[test]
fn preemption_charges_context_switches() {
    let e = engine();
    // ~2.4M instructions (two timeslices) of spinning, then halt.
    let mut g = instance(
        &e,
        "
        const r1, 0
        const r2, 1500000
        loop:
        addi r1, r1, 1
        bltu r1, r2, loop
        halt r1
        ",
    );
    let t0 = e.clock.now();
    match g.invoke([0; 4]) {
        InvokeOutcome::Ok { .. } => {}
        other => panic!("{other:?}"),
    }
    let elapsed = e.clock.since(t0);
    let s = g.stats();
    assert!(s.preemptions >= 1, "long graft must be preempted at least once");
    // Each preemption costs a context-switch pair on top of the work.
    let min_switch_cost = s.preemptions * 2 * costs::CONTEXT_SWITCH.get();
    assert!(elapsed.get() > min_switch_cost);
}

#[test]
fn dead_graft_reports_dead_without_txn_traffic() {
    let e = engine();
    let mut g = instance(&e, "const r1, 0\ndiv r0, r1, r1\nhalt r0");
    assert!(matches!(g.invoke([0; 4]), InvokeOutcome::Aborted { .. }));
    let begins_before = e.txn.borrow().stats().begins;
    assert!(matches!(g.invoke([0; 4]), InvokeOutcome::Dead));
    assert_eq!(
        e.txn.borrow().stats().begins,
        begins_before,
        "dead grafts must not open transactions"
    );
}

#[test]
fn log_and_extents_reset_between_invocations() {
    let e = engine();
    let mut g = instance(
        &e,
        "
        mov r1, r1
        call $log
        const r1, 64
        const r2, 32
        call $ra_submit
        halt r0
        ",
    );
    match g.invoke([5, 0, 0, 0]) {
        InvokeOutcome::Ok { log, extents, .. } => {
            assert_eq!(log, vec![5]);
            assert_eq!(extents, vec![(64, 32)]);
        }
        other => panic!("{other:?}"),
    }
    match g.invoke([9, 0, 0, 0]) {
        InvokeOutcome::Ok { log, extents, .. } => {
            assert_eq!(log, vec![9], "fresh log per invocation");
            assert_eq!(extents, vec![(64, 32)]);
        }
        other => panic!("{other:?}"),
    }
}

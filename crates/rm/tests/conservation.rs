//! Property tests for resource accounting invariants (§3.2).
//!
//! - Transfers conserve the total limit across all principals.
//! - Usage never exceeds the (effective) limit, under any interleaving
//!   of charges, releases, transfers and billing changes.
//! - Failed operations have no partial effect.

use proptest::prelude::*;

use vino_rm::{Limits, PrincipalId, ResourceAccountant, ResourceKind};

const KIND: ResourceKind = ResourceKind::Memory;

#[derive(Debug, Clone)]
enum Op {
    Transfer { from: usize, to: usize, amount: u32 },
    Charge { who: usize, amount: u32 },
    Release { who: usize, amount: u32 },
    BillTo { graft: usize, installer: usize },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..6, 0usize..6, 0u32..2000)
            .prop_map(|(from, to, amount)| Op::Transfer { from, to, amount }),
        (0usize..6, 0u32..2000).prop_map(|(who, amount)| Op::Charge { who, amount }),
        (0usize..6, 0u32..2000).prop_map(|(who, amount)| Op::Release { who, amount }),
        (0usize..6, 0usize..6).prop_map(|(graft, installer)| Op::BillTo { graft, installer }),
    ]
}

fn setup() -> (ResourceAccountant, Vec<PrincipalId>) {
    let mut ra = ResourceAccountant::new();
    let principals: Vec<PrincipalId> = (0..6)
        .map(|i| {
            if i < 3 {
                ra.create_principal(Limits::of(&[(KIND, 1000 * (i as u64 + 1))]))
            } else {
                ra.create_graft_principal()
            }
        })
        .collect();
    (ra, principals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn invariants_hold_under_arbitrary_ops(ops in proptest::collection::vec(op(), 1..60)) {
        let (mut ra, ps) = setup();
        let total0 = ra.total_limit(KIND);
        for o in ops {
            match o {
                Op::Transfer { from, to, amount } => {
                    let _ = ra.transfer(ps[from], ps[to], KIND, amount as u64);
                }
                Op::Charge { who, amount } => {
                    let _ = ra.charge(ps[who], KIND, amount as u64);
                }
                Op::Release { who, amount } => {
                    ra.release(ps[who], KIND, amount as u64);
                }
                Op::BillTo { graft, installer } => {
                    let _ = ra.bill_to(ps[graft], ps[installer]);
                }
            }
            // Invariant 1: transfers never mint or destroy limit.
            prop_assert_eq!(ra.total_limit(KIND), total0);
            // Invariant 2: every payer's usage stays within its limit.
            for p in &ps {
                let payer_used = ra.used(*p, KIND);
                let payer_limit = ra.limit(*p, KIND);
                prop_assert!(
                    payer_used <= payer_limit,
                    "{p}: used {payer_used} > limit {payer_limit}"
                );
            }
        }
    }

    #[test]
    fn denied_charges_are_exactly_over_limit(extra in 1u64..10_000) {
        let mut ra = ResourceAccountant::new();
        let p = ra.create_principal(Limits::of(&[(KIND, 5000)]));
        ra.charge(p, KIND, 5000).unwrap();
        prop_assert!(ra.charge(p, KIND, extra).is_err());
        prop_assert_eq!(ra.used(p, KIND), 5000);
        ra.release(p, KIND, extra.min(5000));
        prop_assert!(ra.charge(p, KIND, extra.min(5000)).is_ok());
    }
}

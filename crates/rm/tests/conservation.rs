//! Randomised tests for resource accounting invariants (§3.2), driven
//! by a seeded deterministic generator (formerly proptest).
//!
//! - Transfers conserve the total limit across all principals.
//! - Usage never exceeds the (effective) limit, under any interleaving
//!   of charges, releases, transfers and billing changes.
//! - Failed operations have no partial effect.

use vino_rm::{Limits, PrincipalId, ResourceAccountant, ResourceKind};
use vino_sim::SplitMix64;

const KIND: ResourceKind = ResourceKind::Memory;

#[derive(Debug, Clone)]
enum Op {
    Transfer { from: usize, to: usize, amount: u32 },
    Charge { who: usize, amount: u32 },
    Release { who: usize, amount: u32 },
    BillTo { graft: usize, installer: usize },
}

fn gen_op(rng: &mut SplitMix64) -> Op {
    match rng.below(4) {
        0 => Op::Transfer {
            from: rng.below(6) as usize,
            to: rng.below(6) as usize,
            amount: rng.below(2000) as u32,
        },
        1 => Op::Charge { who: rng.below(6) as usize, amount: rng.below(2000) as u32 },
        2 => Op::Release { who: rng.below(6) as usize, amount: rng.below(2000) as u32 },
        _ => Op::BillTo { graft: rng.below(6) as usize, installer: rng.below(6) as usize },
    }
}

fn setup() -> (ResourceAccountant, Vec<PrincipalId>) {
    let mut ra = ResourceAccountant::new();
    let principals: Vec<PrincipalId> = (0..6)
        .map(|i| {
            if i < 3 {
                ra.create_principal(Limits::of(&[(KIND, 1000 * (i as u64 + 1))]))
            } else {
                ra.create_graft_principal()
            }
        })
        .collect();
    (ra, principals)
}

#[test]
fn invariants_hold_under_arbitrary_ops() {
    let mut rng = SplitMix64::new(0xC0_5E17);
    for _case in 0..256 {
        let (mut ra, ps) = setup();
        let total0 = ra.total_limit(KIND);
        let n_ops = rng.range(1, 59) as usize;
        for _ in 0..n_ops {
            match gen_op(&mut rng) {
                Op::Transfer { from, to, amount } => {
                    let _ = ra.transfer(ps[from], ps[to], KIND, amount as u64);
                }
                Op::Charge { who, amount } => {
                    let _ = ra.charge(ps[who], KIND, amount as u64);
                }
                Op::Release { who, amount } => {
                    ra.release(ps[who], KIND, amount as u64);
                }
                Op::BillTo { graft, installer } => {
                    let _ = ra.bill_to(ps[graft], ps[installer]);
                }
            }
            // Invariant 1: transfers never mint or destroy limit.
            assert_eq!(ra.total_limit(KIND), total0);
            // Invariant 2: every payer's usage stays within its limit.
            for p in &ps {
                let payer_used = ra.used(*p, KIND);
                let payer_limit = ra.limit(*p, KIND);
                assert!(payer_used <= payer_limit, "{p}: used {payer_used} > limit {payer_limit}");
            }
        }
    }
}

#[test]
fn denied_charges_are_exactly_over_limit() {
    let mut rng = SplitMix64::new(0xDE_4411);
    for _case in 0..256 {
        let extra = rng.range(1, 9_999);
        let mut ra = ResourceAccountant::new();
        let p = ra.create_principal(Limits::of(&[(KIND, 5000)]));
        ra.charge(p, KIND, 5000).unwrap();
        assert!(ra.charge(p, KIND, extra).is_err());
        assert_eq!(ra.used(p, KIND), 5000);
        ra.release(p, KIND, extra.min(5000));
        assert!(ra.charge(p, KIND, extra.min(5000)).is_ok());
    }
}

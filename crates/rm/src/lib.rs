//! Resource limits and accounting — quantity-constrained resources.
//!
//! §3.2: "Each thread in VINO has a set of resource limits associated
//! with it. [...] When a graft is installed, it initially has limits of
//! zero (i.e., it cannot allocate any resources). The installing thread
//! may transfer arbitrary amounts from its own limits to the newly
//! installed graft, or the thread can request that all of the graft's
//! allocation requests be 'billed' against the installing thread's own
//! limits. If multiple processes wish to pool resources [...] they can
//! each delegate their resource rights to the graft, in a manner
//! analogous to ticket delegation in lottery scheduling."
//!
//! Principals are threads *or* grafts; both are rows in the accountant.
//! When a thread invokes a grafted function "the thread's resource
//! limits are replaced by those associated with the graft", so the
//! grafting layer simply charges the graft's principal while the graft
//! runs.

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use vino_sim::fault::{FaultPlane, FaultSite};
use vino_sim::metrics::{Counter, MetricsPlane};
use vino_sim::profile::{ProfilePlane, SpanKind};
use vino_sim::trace::{TraceEvent, TracePlane};
use vino_sim::Cycles;

/// The kinds of quantity-constrained resources the kernel accounts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Pageable memory, in bytes.
    Memory,
    /// Wired (non-evictable) pages, in pages.
    WiredPages,
    /// Kernel heap (graft heaps/stacks live here), in bytes.
    KernelHeap,
    /// Network buffers, in buffers.
    NetBuffers,
    /// Kernel threads.
    Threads,
}

impl ResourceKind {
    /// All kinds, for iteration.
    pub const ALL: [ResourceKind; 5] = [
        ResourceKind::Memory,
        ResourceKind::WiredPages,
        ResourceKind::KernelHeap,
        ResourceKind::NetBuffers,
        ResourceKind::Threads,
    ];

    /// Stable small-integer encoding, used by trace events (the sim
    /// crate cannot name `ResourceKind`, so `rm.*` trace lines carry
    /// this index).
    pub fn index(self) -> u8 {
        self.idx() as u8
    }

    fn idx(self) -> usize {
        match self {
            ResourceKind::Memory => 0,
            ResourceKind::WiredPages => 1,
            ResourceKind::KernelHeap => 2,
            ResourceKind::NetBuffers => 3,
            ResourceKind::Threads => 4,
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceKind::Memory => "memory",
            ResourceKind::WiredPages => "wired-pages",
            ResourceKind::KernelHeap => "kernel-heap",
            ResourceKind::NetBuffers => "net-buffers",
            ResourceKind::Threads => "threads",
        };
        f.write_str(s)
    }
}

/// A vector of per-kind amounts (limits or usage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Limits([u64; 5]);

impl Limits {
    /// All-zero limits — what a freshly installed graft gets (§3.2).
    pub const ZERO: Limits = Limits([0; 5]);

    /// Builds limits from `(kind, amount)` pairs; unlisted kinds are 0.
    pub fn of(pairs: &[(ResourceKind, u64)]) -> Limits {
        let mut l = Limits::ZERO;
        for (k, v) in pairs {
            l.0[k.idx()] = *v;
        }
        l
    }

    /// Amount for `kind`.
    pub fn get(&self, kind: ResourceKind) -> u64 {
        self.0[kind.idx()]
    }

    /// Sets the amount for `kind`.
    pub fn set(&mut self, kind: ResourceKind, v: u64) {
        self.0[kind.idx()] = v;
    }
}

/// Identifies an accounted principal: a thread or an installed graft.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrincipalId(pub u64);

impl fmt::Display for PrincipalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "principal#{}", self.0)
    }
}

/// Resource-accounting failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceError {
    /// A charge would exceed the (effective) limit. "When the process
    /// would normally be denied requests for new resources, the graft's
    /// requests also fail" (§3.2).
    LimitExceeded {
        /// The principal that was charged (after billing indirection).
        principal: PrincipalId,
        /// The resource kind.
        kind: ResourceKind,
        /// Requested amount.
        requested: u64,
        /// Headroom actually available.
        available: u64,
    },
    /// Transfer source lacks unused headroom to give away.
    InsufficientHeadroom {
        /// The transfer source.
        from: PrincipalId,
        /// The resource kind.
        kind: ResourceKind,
    },
    /// Unknown principal id.
    NoSuchPrincipal(PrincipalId),
    /// Billing chains may not form cycles.
    BillingCycle(PrincipalId),
}

impl fmt::Display for ResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceError::LimitExceeded { principal, kind, requested, available } => {
                write!(f, "{principal}: {kind} charge of {requested} exceeds available {available}")
            }
            ResourceError::InsufficientHeadroom { from, kind } => {
                write!(f, "{from}: insufficient unused {kind} headroom to transfer")
            }
            ResourceError::NoSuchPrincipal(p) => write!(f, "unknown {p}"),
            ResourceError::BillingCycle(p) => write!(f, "billing cycle involving {p}"),
        }
    }
}

impl std::error::Error for ResourceError {}

#[derive(Debug, Clone, Default)]
struct Account {
    limits: Limits,
    used: Limits,
    peak: Limits,
    billed_to: Option<PrincipalId>,
    /// Who answers for this principal's abort-blame. Independent of
    /// `billed_to`: a Transfer-mode graft pays for its own allocations
    /// out of transferred limits, but the blame for its aborts still
    /// belongs to the installer who vouched for it.
    blamed_on: Option<PrincipalId>,
    /// Accumulated abort-blame, in cycles of kernel time spent cleaning
    /// up after this principal's grafts (§3.2's accounting turned into a
    /// reliability signal).
    blame: u64,
    /// Optional ceiling on blame; once reached the kernel may refuse
    /// further graft installs from this principal.
    blame_limit: Option<u64>,
}

/// An opaque snapshot of the accountant's book: every account (limits,
/// usage, peaks, billing/blame links) and the principal-id counter.
/// Captured by [`ResourceAccountant::export_state`], replanted by
/// [`ResourceAccountant::restore_state`] so a checkpoint-restored
/// kernel mints the same principal ids and enforces the same limits.
#[derive(Debug, Clone)]
pub struct AccountantState {
    accounts: HashMap<PrincipalId, Account>,
    next: u64,
}

/// The kernel's resource accountant.
#[derive(Debug, Default)]
pub struct ResourceAccountant {
    accounts: HashMap<PrincipalId, Account>,
    next: u64,
    fault: Option<Rc<FaultPlane>>,
    trace: Option<Rc<TracePlane>>,
    metrics: Option<Rc<MetricsPlane>>,
    profile: Option<Rc<ProfilePlane>>,
}

impl ResourceAccountant {
    /// An empty accountant.
    pub fn new() -> ResourceAccountant {
        ResourceAccountant::default()
    }

    /// Attaches a fault plane: each [`charge`](Self::charge) visits
    /// [`FaultSite::ResourceExhaust`]; when it fires the charge is
    /// denied as over-limit even though the payer has headroom —
    /// simulating transient kernel-wide exhaustion (§3.2: "when the
    /// process would normally be denied requests [...] the graft's
    /// requests also fail").
    pub fn set_fault_plane(&mut self, plane: Rc<FaultPlane>) {
        self.fault = Some(plane);
    }

    /// Wires a trace plane: grants, releases and limit denials emit
    /// `rm.*` events (see `docs/TRACING.md`).
    pub fn set_trace_plane(&mut self, plane: Rc<TracePlane>) {
        self.trace = Some(plane);
    }

    /// Wires a metrics plane: grants, denials and releases bump their
    /// counters, and each grant raises the per-kind high-water gauge
    /// (see `docs/METRICS.md`).
    pub fn set_metrics_plane(&mut self, plane: Rc<MetricsPlane>) {
        self.metrics = Some(plane);
    }

    /// Wires a profile plane: each grant is recorded as an
    /// instantaneous `rm-grant` mark in the invocation span tree
    /// (grants are pure bookkeeping and charge no cycles, so the span
    /// has zero duration — see `docs/PROFILING.md`).
    pub fn set_profile_plane(&mut self, plane: Rc<ProfilePlane>) {
        self.profile = Some(plane);
    }

    fn emit(&self, ev: TraceEvent) {
        if let Some(tp) = &self.trace {
            tp.emit(ev);
        }
    }

    fn minc(&self, c: Counter) {
        if let Some(mp) = &self.metrics {
            mp.inc(c);
        }
    }

    /// Snapshots the full book for a checkpoint.
    pub fn export_state(&self) -> AccountantState {
        AccountantState { accounts: self.accounts.clone(), next: self.next }
    }

    /// Replants an [`AccountantState`] capture, replacing the book and
    /// the id counter. Attached planes are untouched.
    pub fn restore_state(&mut self, st: &AccountantState) {
        self.accounts = st.accounts.clone();
        self.next = st.next;
    }

    /// Creates a principal (a thread) with the given limits.
    pub fn create_principal(&mut self, limits: Limits) -> PrincipalId {
        let id = PrincipalId(self.next);
        self.next += 1;
        self.accounts.insert(id, Account { limits, ..Account::default() });
        id
    }

    /// Creates a graft principal: limits of zero (§3.2).
    pub fn create_graft_principal(&mut self) -> PrincipalId {
        self.create_principal(Limits::ZERO)
    }

    /// Transfers `amount` of `kind` limit headroom from one principal to
    /// another (the §3.2 install-time transfer, and the delegation used
    /// for pooling). Only *unused* headroom can move.
    pub fn transfer(
        &mut self,
        from: PrincipalId,
        to: PrincipalId,
        kind: ResourceKind,
        amount: u64,
    ) -> Result<(), ResourceError> {
        if !self.accounts.contains_key(&to) {
            return Err(ResourceError::NoSuchPrincipal(to));
        }
        let src = self.accounts.get_mut(&from).ok_or(ResourceError::NoSuchPrincipal(from))?;
        let headroom = src.limits.get(kind).saturating_sub(src.used.get(kind));
        if headroom < amount {
            return Err(ResourceError::InsufficientHeadroom { from, kind });
        }
        src.limits.set(kind, src.limits.get(kind) - amount);
        let dst = self.accounts.get_mut(&to).expect("checked above");
        dst.limits.set(kind, dst.limits.get(kind) + amount);
        Ok(())
    }

    /// Routes all of `graft`'s charges to `installer`'s account ("billed
    /// against the installing thread's own limits", §3.2).
    pub fn bill_to(
        &mut self,
        graft: PrincipalId,
        installer: PrincipalId,
    ) -> Result<(), ResourceError> {
        if !self.accounts.contains_key(&installer) {
            return Err(ResourceError::NoSuchPrincipal(installer));
        }
        // Reject chains that would loop.
        let mut cur = Some(installer);
        let mut hops = 0;
        while let Some(p) = cur {
            if p == graft {
                return Err(ResourceError::BillingCycle(graft));
            }
            hops += 1;
            if hops > 8 {
                return Err(ResourceError::BillingCycle(graft));
            }
            cur = self.accounts.get(&p).and_then(|a| a.billed_to);
        }
        self.accounts.get_mut(&graft).ok_or(ResourceError::NoSuchPrincipal(graft))?.billed_to =
            Some(installer);
        Ok(())
    }

    /// Resolves the billing chain to the account that actually pays.
    pub fn payer_of(&self, principal: PrincipalId) -> PrincipalId {
        let mut cur = principal;
        let mut hops = 0;
        while let Some(acc) = self.accounts.get(&cur) {
            match acc.billed_to {
                Some(next) if hops < 8 => {
                    cur = next;
                    hops += 1;
                }
                _ => break,
            }
        }
        cur
    }

    /// Charges `amount` of `kind` to `principal` (through billing).
    /// Fails — without partial effect — when the payer lacks headroom.
    pub fn charge(
        &mut self,
        principal: PrincipalId,
        kind: ResourceKind,
        amount: u64,
    ) -> Result<(), ResourceError> {
        let payer = self.payer_of(principal);
        if self.fault.as_ref().is_some_and(|p| p.fire(FaultSite::ResourceExhaust)) {
            // Injected denial: indistinguishable from a genuine limit
            // hit, and like one it has no partial effect.
            self.minc(Counter::RmDenials);
            self.emit(TraceEvent::ResLimitHit {
                principal: payer.0,
                kind: kind.index(),
                requested: amount,
            });
            return Err(ResourceError::LimitExceeded {
                principal: payer,
                kind,
                requested: amount,
                available: 0,
            });
        }
        let acc = self.accounts.get_mut(&payer).ok_or(ResourceError::NoSuchPrincipal(payer))?;
        let used = acc.used.get(kind);
        let limit = acc.limits.get(kind);
        let available = limit.saturating_sub(used);
        if amount > available {
            self.minc(Counter::RmDenials);
            self.emit(TraceEvent::ResLimitHit {
                principal: payer.0,
                kind: kind.index(),
                requested: amount,
            });
            return Err(ResourceError::LimitExceeded {
                principal: payer,
                kind,
                requested: amount,
                available,
            });
        }
        acc.used.set(kind, used + amount);
        if acc.used.get(kind) > acc.peak.get(kind) {
            let new_peak = acc.used.get(kind);
            acc.peak.set(kind, new_peak);
        }
        let now_used = acc.used.get(kind);
        if let Some(mp) = &self.metrics {
            mp.inc(Counter::RmGrants);
            mp.observe_rm_peak(kind.index(), now_used);
        }
        if let Some(pp) = &self.profile {
            pp.mark(SpanKind::RmGrant, Cycles::ZERO);
        }
        self.emit(TraceEvent::ResGrant { principal: payer.0, kind: kind.index(), amount });
        Ok(())
    }

    /// Releases `amount` of `kind` charged to `principal` (through
    /// billing). Saturates at zero — double release is forgiven because
    /// abort paths may race with explicit frees.
    pub fn release(&mut self, principal: PrincipalId, kind: ResourceKind, amount: u64) {
        let payer = self.payer_of(principal);
        if let Some(acc) = self.accounts.get_mut(&payer) {
            let used = acc.used.get(kind);
            acc.used.set(kind, used.saturating_sub(amount));
            self.minc(Counter::RmReleases);
            self.emit(TraceEvent::ResRelease { principal: payer.0, kind: kind.index(), amount });
        }
    }

    /// Current usage of `principal`'s payer account.
    pub fn used(&self, principal: PrincipalId, kind: ResourceKind) -> u64 {
        let payer = self.payer_of(principal);
        self.accounts.get(&payer).map_or(0, |a| a.used.get(kind))
    }

    /// Limit of `principal`'s payer account.
    pub fn limit(&self, principal: PrincipalId, kind: ResourceKind) -> u64 {
        let payer = self.payer_of(principal);
        self.accounts.get(&payer).map_or(0, |a| a.limits.get(kind))
    }

    /// Peak usage of `principal`'s own account.
    pub fn peak(&self, principal: PrincipalId, kind: ResourceKind) -> u64 {
        self.accounts.get(&principal).map_or(0, |a| a.peak.get(kind))
    }

    /// Sum of `kind` limits across all principals — conserved by
    /// transfers (property-tested).
    pub fn total_limit(&self, kind: ResourceKind) -> u64 {
        self.accounts.values().map(|a| a.limits.get(kind)).sum()
    }

    /// Directs `graft`'s abort-blame at `installer` (set by the loader
    /// for every install, whatever the billing mode).
    pub fn blame_to(&mut self, graft: PrincipalId, installer: PrincipalId) {
        if let Some(acc) = self.accounts.get_mut(&graft) {
            acc.blamed_on = Some(installer);
        }
    }

    /// The account that answers for `principal`'s aborts: its
    /// [`blame_to`](Self::blame_to) installer if one was recorded, else
    /// the [`bill_to`](Self::bill_to) payer chain. This is the account
    /// [`charge_blame`](Self::charge_blame) debits — and the principal
    /// the watch plane's per-principal windows (and hence the admission
    /// controller) key on.
    pub fn blame_target(&self, principal: PrincipalId) -> PrincipalId {
        self.accounts
            .get(&principal)
            .and_then(|a| a.blamed_on)
            .unwrap_or_else(|| self.payer_of(principal))
    }

    /// Bills `amount` cycles of abort-blame against whoever answers for
    /// `principal`: its [`blame_to`](Self::blame_to) installer if one
    /// was recorded, else the [`bill_to`](Self::bill_to) payer chain.
    /// Returns the account that was debited. Blame only accumulates —
    /// aborts are sunk kernel time; there is no refund path.
    pub fn charge_blame(&mut self, principal: PrincipalId, amount: u64) -> PrincipalId {
        let payer = self.blame_target(principal);
        if let Some(acc) = self.accounts.get_mut(&payer) {
            acc.blame = acc.blame.saturating_add(amount);
        }
        payer
    }

    /// Accumulated abort-blame on `principal`'s own account, in cycles.
    pub fn blame(&self, principal: PrincipalId) -> u64 {
        self.accounts.get(&principal).map_or(0, |a| a.blame)
    }

    /// Sets a blame ceiling for `principal`. Once
    /// [`blame_exceeded`](Self::blame_exceeded) reports true, the
    /// grafting layer refuses further installs from the principal.
    pub fn set_blame_limit(&mut self, principal: PrincipalId, limit: u64) {
        if let Some(acc) = self.accounts.get_mut(&principal) {
            acc.blame_limit = Some(limit);
        }
    }

    /// True when `principal` has a blame ceiling and has reached it.
    /// Principals without an explicit ceiling are never cut off (blame
    /// still accumulates for diagnostics).
    pub fn blame_exceeded(&self, principal: PrincipalId) -> bool {
        self.accounts.get(&principal).is_some_and(|a| a.blame_limit.is_some_and(|l| a.blame >= l))
    }

    /// Removes a principal (graft unload), returning its remaining
    /// limits to `heir` (usually the installer) if given.
    pub fn destroy(&mut self, principal: PrincipalId, heir: Option<PrincipalId>) {
        if let Some(acc) = self.accounts.remove(&principal) {
            if let Some(h) = heir {
                if let Some(ha) = self.accounts.get_mut(&h) {
                    for kind in ResourceKind::ALL {
                        ha.limits.set(kind, ha.limits.get(kind) + acc.limits.get(kind));
                    }
                }
            }
            // Clear dangling billing references.
            for a in self.accounts.values_mut() {
                if a.billed_to == Some(principal) {
                    a.billed_to = None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use ResourceKind::{Memory, WiredPages};

    #[test]
    fn graft_principal_starts_at_zero() {
        let mut ra = ResourceAccountant::new();
        let g = ra.create_graft_principal();
        for kind in ResourceKind::ALL {
            assert_eq!(ra.limit(g, kind), 0);
        }
        // A fresh graft cannot allocate anything (§3.2).
        let err = ra.charge(g, Memory, 1).unwrap_err();
        assert!(matches!(err, ResourceError::LimitExceeded { available: 0, .. }));
    }

    #[test]
    fn transfer_moves_headroom() {
        let mut ra = ResourceAccountant::new();
        let app = ra.create_principal(Limits::of(&[(Memory, 1000)]));
        let g = ra.create_graft_principal();
        ra.transfer(app, g, Memory, 400).unwrap();
        assert_eq!(ra.limit(app, Memory), 600);
        assert_eq!(ra.limit(g, Memory), 400);
        assert!(ra.charge(g, Memory, 400).is_ok());
        assert!(ra.charge(g, Memory, 1).is_err());
    }

    #[test]
    fn transfer_cannot_strand_usage() {
        let mut ra = ResourceAccountant::new();
        let app = ra.create_principal(Limits::of(&[(Memory, 1000)]));
        let g = ra.create_graft_principal();
        ra.charge(app, Memory, 900).unwrap();
        // Only 100 unused headroom left.
        assert!(matches!(
            ra.transfer(app, g, Memory, 200),
            Err(ResourceError::InsufficientHeadroom { .. })
        ));
        ra.transfer(app, g, Memory, 100).unwrap();
    }

    #[test]
    fn billing_routes_to_installer() {
        let mut ra = ResourceAccountant::new();
        let app = ra.create_principal(Limits::of(&[(Memory, 500)]));
        let g = ra.create_graft_principal();
        ra.bill_to(g, app).unwrap();
        ra.charge(g, Memory, 300).unwrap();
        assert_eq!(ra.used(app, Memory), 300, "charge lands on installer");
        // The graft is denied exactly when the installer would be.
        let err = ra.charge(g, Memory, 300).unwrap_err();
        assert!(matches!(err, ResourceError::LimitExceeded { available: 200, .. }));
        ra.release(g, Memory, 300);
        assert_eq!(ra.used(app, Memory), 0);
    }

    #[test]
    fn billing_cycles_rejected() {
        let mut ra = ResourceAccountant::new();
        let a = ra.create_graft_principal();
        let b = ra.create_graft_principal();
        ra.bill_to(a, b).unwrap();
        assert!(matches!(ra.bill_to(b, a), Err(ResourceError::BillingCycle(_))));
        assert!(matches!(ra.bill_to(a, a), Err(ResourceError::BillingCycle(_))));
    }

    #[test]
    fn pooling_delegation() {
        // §3.2's database example: several clients pool wired memory
        // into a shared buffer-pool graft.
        let mut ra = ResourceAccountant::new();
        let clients: Vec<_> =
            (0..3).map(|_| ra.create_principal(Limits::of(&[(WiredPages, 100)]))).collect();
        let pool = ra.create_graft_principal();
        for c in &clients {
            ra.transfer(*c, pool, WiredPages, 50).unwrap();
        }
        assert_eq!(ra.limit(pool, WiredPages), 150);
        assert!(ra.charge(pool, WiredPages, 150).is_ok());
        assert!(ra.charge(pool, WiredPages, 1).is_err());
    }

    #[test]
    fn release_saturates() {
        let mut ra = ResourceAccountant::new();
        let app = ra.create_principal(Limits::of(&[(Memory, 100)]));
        ra.charge(app, Memory, 40).unwrap();
        ra.release(app, Memory, 100); // Over-release forgiven.
        assert_eq!(ra.used(app, Memory), 0);
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut ra = ResourceAccountant::new();
        let app = ra.create_principal(Limits::of(&[(Memory, 100)]));
        ra.charge(app, Memory, 70).unwrap();
        ra.release(app, Memory, 50);
        ra.charge(app, Memory, 10).unwrap();
        assert_eq!(ra.peak(app, Memory), 70);
        assert_eq!(ra.used(app, Memory), 30);
    }

    #[test]
    fn destroy_returns_limits_to_heir() {
        let mut ra = ResourceAccountant::new();
        let app = ra.create_principal(Limits::of(&[(Memory, 1000)]));
        let g = ra.create_graft_principal();
        ra.transfer(app, g, Memory, 400).unwrap();
        ra.destroy(g, Some(app));
        assert_eq!(ra.limit(app, Memory), 1000, "graft unload returns headroom");
    }

    #[test]
    fn destroy_clears_billing_references() {
        let mut ra = ResourceAccountant::new();
        let app = ra.create_principal(Limits::of(&[(Memory, 10)]));
        let g = ra.create_graft_principal();
        ra.bill_to(g, app).unwrap();
        ra.destroy(app, None);
        // The graft's charges now land on its own (zero) account.
        assert!(ra.charge(g, Memory, 1).is_err());
    }

    #[test]
    fn unknown_principals_error() {
        let mut ra = ResourceAccountant::new();
        let ghost = PrincipalId(999);
        let real = ra.create_graft_principal();
        assert!(matches!(
            ra.transfer(ghost, real, Memory, 1),
            Err(ResourceError::NoSuchPrincipal(_))
        ));
        assert!(matches!(
            ra.transfer(real, ghost, Memory, 1),
            Err(ResourceError::NoSuchPrincipal(_))
        ));
        assert!(matches!(ra.bill_to(real, ghost), Err(ResourceError::NoSuchPrincipal(_))));
    }

    #[test]
    fn injected_exhaustion_denies_despite_headroom() {
        let mut ra = ResourceAccountant::new();
        let app = ra.create_principal(Limits::of(&[(Memory, 1000)]));
        let plane = FaultPlane::seeded(0);
        plane.arm(FaultSite::ResourceExhaust, 1);
        ra.set_fault_plane(plane);
        let err = ra.charge(app, Memory, 10).unwrap_err();
        assert!(matches!(err, ResourceError::LimitExceeded { available: 0, .. }));
        assert_eq!(ra.used(app, Memory), 0, "denied charge has no partial effect");
        // The one-shot is spent; the same charge now succeeds.
        ra.charge(app, Memory, 10).unwrap();
        assert_eq!(ra.used(app, Memory), 10);
    }

    #[test]
    fn blame_follows_the_billing_chain() {
        let mut ra = ResourceAccountant::new();
        let installer = ra.create_principal(Limits::of(&[(Memory, 100)]));
        let graft = ra.create_graft_principal();
        ra.bill_to(graft, installer).unwrap();
        let payer = ra.charge_blame(graft, 4200);
        assert_eq!(payer, installer, "blame lands on the installer");
        assert_eq!(ra.blame(installer), 4200);
        assert_eq!(ra.blame(graft), 0);
        // No ceiling: never cut off.
        assert!(!ra.blame_exceeded(installer));
        ra.set_blame_limit(installer, 5000);
        assert!(!ra.blame_exceeded(installer));
        ra.charge_blame(graft, 800);
        assert!(ra.blame_exceeded(installer), "5000 reached");
    }

    #[test]
    fn blame_to_overrides_the_billing_chain() {
        // Transfer-mode shape: the graft pays for its own resources (no
        // bill_to link) yet its abort-blame still reaches the installer.
        let mut ra = ResourceAccountant::new();
        let installer = ra.create_principal(Limits::of(&[(Memory, 100)]));
        let graft = ra.create_graft_principal();
        ra.blame_to(graft, installer);
        assert_eq!(ra.charge_blame(graft, 900), installer);
        assert_eq!(ra.blame(installer), 900);
        assert_eq!(ra.blame(graft), 0);
    }

    #[test]
    fn failed_charge_has_no_effect() {
        let mut ra = ResourceAccountant::new();
        let app = ra.create_principal(Limits::of(&[(Memory, 100)]));
        ra.charge(app, Memory, 60).unwrap();
        assert!(ra.charge(app, Memory, 50).is_err());
        assert_eq!(ra.used(app, Memory), 60, "failed charge must not partially apply");
    }

    #[test]
    fn trace_plane_sees_grants_releases_and_denials() {
        use vino_sim::trace::TracePlane;
        use vino_sim::VirtualClock;
        let mut ra = ResourceAccountant::new();
        let plane = TracePlane::new(VirtualClock::new());
        ra.set_trace_plane(Rc::clone(&plane));
        let app = ra.create_principal(Limits::of(&[(Memory, 100)]));
        ra.charge(app, Memory, 60).unwrap();
        ra.release(app, Memory, 10);
        assert!(ra.charge(app, Memory, 90).is_err());
        let evs: Vec<TraceEvent> = plane.records().iter().map(|r| r.event).collect();
        let k = Memory.index();
        assert_eq!(
            evs,
            vec![
                TraceEvent::ResGrant { principal: app.0, kind: k, amount: 60 },
                TraceEvent::ResRelease { principal: app.0, kind: k, amount: 10 },
                TraceEvent::ResLimitHit { principal: app.0, kind: k, requested: 90 },
            ]
        );
    }

    #[test]
    fn total_limit_conserved_by_transfer() {
        let mut ra = ResourceAccountant::new();
        let a = ra.create_principal(Limits::of(&[(Memory, 700)]));
        let b = ra.create_principal(Limits::of(&[(Memory, 300)]));
        let before = ra.total_limit(Memory);
        ra.transfer(a, b, Memory, 250).unwrap();
        assert_eq!(ra.total_limit(Memory), before);
    }
}

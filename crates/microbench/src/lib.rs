//! A tiny, dependency-free stand-in for the `criterion` benchmark
//! harness, so `cargo build`/`cargo test`/`cargo bench` resolve without
//! a crates-io mirror. The bench sources under `crates/bench/benches/`
//! compile unchanged against this crate via a Cargo dependency rename
//! (`criterion = { path = "../microbench", package = "vino-microbench" }`).
//!
//! The subset implemented is exactly what those benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed
//! over enough iterations to fill a short measurement window; the
//! harness reports mean wall-clock time per iteration (and derived
//! throughput when one was declared). It intentionally skips criterion's
//! statistical machinery — this is a smoke-and-ballpark harness, not a
//! regression detector.

pub mod alloc;

use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work too.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// Declared work per iteration, used to derive throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Passed to the closure given to `bench_function`; drives the timing
/// loop.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    iters_hint: u64,
}

impl Bencher<'_> {
    /// Times `routine`, recording mean time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few calls, also used to size the measured batch.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3 || (warm_start.elapsed() < WARMUP && warm_iters < 1_000_000) {
            black_box(routine());
            warm_iters += 1;
        }
        let per_call = warm_start.elapsed() / warm_iters.max(1) as u32;
        let batch = if per_call.is_zero() {
            self.iters_hint
        } else {
            (MEASURE.as_nanos() / per_call.as_nanos().max(1)) as u64
        }
        .clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        let total = start.elapsed();
        self.samples.push(total / batch.max(1) as u32);
    }
}

const WARMUP: Duration = Duration::from_millis(30);
const MEASURE: Duration = Duration::from_millis(120);

/// The harness entry point, compatible with criterion's `Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(id, None, &mut f);
        self
    }

    /// Opens a named group; the group supports `throughput`,
    /// `bench_function` and `finish` like criterion's.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix and an optional
/// throughput declaration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed by one iteration of subsequent
    /// benchmarks in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.throughput, &mut f);
        self
    }

    /// Ends the group (formatting no-op; present for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(id: &str, throughput: Option<Throughput>, f: &mut F) {
    let mut samples = Vec::new();
    let mut b = Bencher { samples: &mut samples, iters_hint: 100 };
    f(&mut b);
    let mean = match samples.last() {
        Some(d) => *d,
        None => {
            println!("{id:<40} (no samples)");
            return;
        }
    };
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => {
            format!("  {:>10.1} MiB/s", n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0))
        }
        Throughput::Elements(n) => {
            format!("  {:>10.0} elem/s", n as f64 / mean.as_secs_f64())
        }
    });
    println!("{id:<40} {:>12}{}", format_duration(mean), rate.unwrap_or_default());
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Collects bench functions under one group name, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running each group, honouring `--bench`-style extra
/// args by ignoring them (cargo passes `--bench` when `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure_and_records() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("t", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_with_throughput_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(4096));
        g.bench_function("x", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn format_duration_scales() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(2)), "2.00 µs");
        assert!(format_duration(Duration::from_millis(3)).ends_with("ms"));
    }
}

//! A counting global allocator, for zero-allocation assertions.
//!
//! Install as the `#[global_allocator]` of a bench binary, snapshot
//! [`CountingAlloc::allocations`] around the code under test, and
//! assert the delta. Every `alloc`/`alloc_zeroed`/`realloc` counts as
//! one allocation; frees are not counted (a hot path that only frees
//! is still heap-quiet for the purpose of these proofs).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Forwards to the system allocator, counting allocation calls.
pub struct CountingAlloc {
    allocations: AtomicU64,
}

impl CountingAlloc {
    /// A fresh counter (const, so it can be a `static`).
    pub const fn new() -> CountingAlloc {
        CountingAlloc { allocations: AtomicU64::new(0) }
    }

    /// Allocation calls observed so far.
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }
}

impl Default for CountingAlloc {
    fn default() -> CountingAlloc {
        CountingAlloc::new()
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_allocations() {
        // Not installed as the global allocator here; drive it directly.
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            a.dealloc(p, layout);
        }
        assert_eq!(a.allocations(), 1);
    }
}

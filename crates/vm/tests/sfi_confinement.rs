//! Randomised tests for the GraftVM's SFI memory model, driven by a
//! seeded deterministic generator (formerly proptest).
//!
//! The central safety claim of §3.3 is that a MiSFIT-processed graft can
//! never read or write memory outside its own segment: "Code is added to
//! force the target address to fall within the range of memory allocated
//! to the graft." Here we generate *arbitrary* programs whose memory
//! accesses are each preceded by a `Clamp` (what the instrumentation pass
//! guarantees; `vino-misfit` has its own tests that it inserts them) and
//! assert that no execution ever touches the kernel region.

use vino_sim::{SplitMix64, VirtualClock};
use vino_vm::interp::{Exit, NullKernel, Trap, Vm};
use vino_vm::isa::{AluOp, Cond, Instr, Program, Reg};
use vino_vm::mem::{AddressSpace, Protection};

/// The dedicated SFI sandbox register (Wahbe et al.'s reserved
/// register): only sandboxing sequences write it, so it always holds an
/// in-segment address once the prologue clamp has run — even when a
/// branch jumps into the middle of a sandbox sequence.
const SANDBOX: Reg = Reg(14);

fn gen_reg(rng: &mut SplitMix64) -> Reg {
    // User code never touches the reserved sandbox register.
    Reg(rng.below(14) as u8)
}

const ALU_OPS: &[AluOp] = &[
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Xor,
    AluOp::And,
    AluOp::Or,
    AluOp::Shl,
    AluOp::Shr,
];

const CONDS: &[Cond] = &[Cond::Eq, Cond::Ne, Cond::LtU, Cond::GeU, Cond::LtS, Cond::GeS];

fn gen_alu_op(rng: &mut SplitMix64) -> AluOp {
    ALU_OPS[rng.below(ALU_OPS.len() as u64) as usize]
}

fn gen_cond(rng: &mut SplitMix64) -> Cond {
    CONDS[rng.below(CONDS.len() as u64) as usize]
}

/// One "logical" instruction of an instrumented program. Memory accesses
/// expand into `Clamp` + access, mirroring the MiSFIT pass output.
#[derive(Debug, Clone)]
enum Piece {
    Plain(Instr),
    ClampedLoad { d: Reg, addr: Reg, off: i32 },
    ClampedStore { s: Reg, addr: Reg, off: i32 },
    Branch { cond: Cond, a: Reg, b: Reg },
    Jump,
}

fn gen_piece(rng: &mut SplitMix64) -> Piece {
    match rng.below(8) {
        0 => Piece::Plain(Instr::Const { d: gen_reg(rng), imm: rng.next_u64() as i64 }),
        1 => Piece::Plain(Instr::Mov { d: gen_reg(rng), s: gen_reg(rng) }),
        2 => Piece::Plain(Instr::Alu {
            op: gen_alu_op(rng),
            d: gen_reg(rng),
            a: gen_reg(rng),
            b: gen_reg(rng),
        }),
        3 => Piece::Plain(Instr::AluI {
            op: gen_alu_op(rng),
            d: gen_reg(rng),
            a: gen_reg(rng),
            imm: rng.next_u64() as i32 as i64,
        }),
        4 => Piece::ClampedLoad {
            d: gen_reg(rng),
            addr: gen_reg(rng),
            off: rng.range(0, 127) as i32 - 64,
        },
        5 => Piece::ClampedStore {
            s: gen_reg(rng),
            addr: gen_reg(rng),
            off: rng.range(0, 127) as i32 - 64,
        },
        6 => Piece::Branch { cond: gen_cond(rng), a: gen_reg(rng), b: gen_reg(rng) },
        _ => Piece::Jump,
    }
}

/// Expands pieces into an instrumented program. Branch/jump targets are
/// chosen by hashing so they stay within range but are otherwise wild.
fn build_program(pieces: Vec<Piece>, seed: u32) -> Program {
    // Prologue: force the sandbox register in-segment before anything
    // runs. After this, SANDBOX is in-segment at every program point,
    // because only Clamp writes it.
    let mut instrs: Vec<Instr> = vec![Instr::Clamp { r: SANDBOX }];
    // Lay out to know the final length; memory ops take 4 slots
    // (mov SANDBOX, addr / add offset / clamp / access).
    let mut len = 1u32;
    for p in &pieces {
        len += match p {
            Piece::ClampedLoad { .. } | Piece::ClampedStore { .. } => 4,
            _ => 1,
        };
    }
    let total = len + 1; // + Halt
    let target_for = |i: u32| -> u32 { (i.wrapping_mul(2654435761).wrapping_add(seed)) % total };
    for (k, p) in pieces.into_iter().enumerate() {
        let k = k as u32;
        match p {
            Piece::Plain(i) => instrs.push(i),
            Piece::ClampedLoad { d, addr, off } => {
                // The MiSFIT sandbox sequence: compute the effective
                // address in the reserved register, clamp, then access
                // through it. A branch landing mid-sequence still finds
                // an in-segment address in SANDBOX.
                instrs.push(Instr::Mov { d: SANDBOX, s: addr });
                instrs.push(Instr::AluI {
                    op: AluOp::Add,
                    d: SANDBOX,
                    a: SANDBOX,
                    imm: off as i64,
                });
                instrs.push(Instr::Clamp { r: SANDBOX });
                instrs.push(Instr::LoadW { d, addr: SANDBOX, off: 0 });
            }
            Piece::ClampedStore { s, addr, off } => {
                instrs.push(Instr::Mov { d: SANDBOX, s: addr });
                instrs.push(Instr::AluI {
                    op: AluOp::Add,
                    d: SANDBOX,
                    a: SANDBOX,
                    imm: off as i64,
                });
                instrs.push(Instr::Clamp { r: SANDBOX });
                instrs.push(Instr::StoreW { s, addr: SANDBOX, off: 0 });
            }
            Piece::Branch { cond, a, b } => {
                instrs.push(Instr::Br { cond, a, b, target: target_for(k) });
            }
            Piece::Jump => instrs.push(Instr::Jmp { target: target_for(k) }),
        }
    }
    instrs.push(Instr::Halt { result: Reg(0) });
    Program::new("fuzz", instrs)
}

/// Arbitrary instrumented programs never write the kernel region and
/// never fault with an SFI violation: every access lands in-segment.
#[test]
fn instrumented_programs_stay_in_segment() {
    let mut rng = SplitMix64::new(0x5F1_C04F);
    for _case in 0..256 {
        let n = rng.range(1, 59) as usize;
        let pieces: Vec<Piece> = (0..n).map(|_| gen_piece(&mut rng)).collect();
        let seed = rng.next_u64() as u32;
        let prog = build_program(pieces, seed);
        prog.validate().expect("generated program must be well-formed");
        let mem = AddressSpace::new(4096, 4096, Protection::Sfi);
        let mut vm = Vm::new(mem);
        // Plant a sentinel in kernel memory; it must survive.
        vm.mem.kernel_bytes_mut(0, 4).unwrap().copy_from_slice(&0xDEADBEEFu32.to_le_bytes());
        let clock = VirtualClock::new();
        let mut fuel = 5_000; // Bounded: wild jumps can loop.
        let exit = vm.run(&prog, &mut NullKernel, &clock, &mut fuel);
        // The only acceptable outcomes: normal halt, preemption, or a
        // *non-memory* trap. Any MemError means confinement failed
        // (clamped accesses cannot be unmapped or kernel-region).
        if let Exit::Trapped(Trap::Mem(e)) = &exit {
            panic!("memory fault escaped SFI: {e:?}");
        }
        assert_eq!(vm.mem.kernel_write_count(), 0);
        let sentinel = vm.mem.kernel_bytes(0, 4).unwrap();
        assert_eq!(sentinel, &0xDEADBEEFu32.to_le_bytes()[..]);
    }
}

/// Clamp is idempotent and always lands in-segment, for any address.
#[test]
fn clamp_idempotent_and_confining() {
    let mut rng = SplitMix64::new(0xC1A_3417);
    for _case in 0..256 {
        let addr = rng.next_u64();
        let size_pow = rng.range(8, 19) as u32;
        let mem = AddressSpace::new(1usize << size_pow, 64, Protection::Sfi);
        let c1 = mem.clamp(addr);
        assert!(mem.in_segment(c1));
        assert_eq!(mem.clamp(c1), c1);
    }
}

/// Un-instrumented programs CAN corrupt the kernel region — the
/// disaster SFI prevents. This is the control experiment: a direct
/// store to a kernel address must succeed in Unprotected mode.
#[test]
fn unprotected_wild_store_corrupts() {
    let mut rng = SplitMix64::new(0x0B_AD);
    for _case in 0..256 {
        let off = rng.below(1000);
        let val = rng.range(1, u32::MAX as u64 - 1) as u32;
        let mem = AddressSpace::new(4096, 4096, Protection::Unprotected);
        let kaddr = mem.kernel_base() + (off & !3);
        let prog = Program::new(
            "wild",
            vec![
                Instr::Const { d: Reg(1), imm: kaddr as i64 },
                Instr::Const { d: Reg(2), imm: val as i64 },
                Instr::StoreW { s: Reg(2), addr: Reg(1), off: 0 },
                Instr::Halt { result: Reg(0) },
            ],
        );
        let mut vm = Vm::new(mem);
        let clock = VirtualClock::new();
        let mut fuel = 100;
        let exit = vm.run(&prog, &mut NullKernel, &clock, &mut fuel);
        assert_eq!(exit, Exit::Halted(0));
        assert_eq!(vm.mem.kernel_write_count(), 1);
    }
}

/// Fuel is an exact instruction budget: a spin loop retires exactly
/// `fuel` instructions and then preempts (Rule 1).
#[test]
fn fuel_bounds_execution_exactly() {
    let mut rng = SplitMix64::new(0xF0E1);
    for _case in 0..256 {
        let fuel_in = rng.range(1, 9_999);
        let mem = AddressSpace::new(256, 0, Protection::Sfi);
        let prog = Program::new("spin", vec![Instr::Jmp { target: 0 }]);
        let mut vm = Vm::new(mem);
        let clock = VirtualClock::new();
        let mut fuel = fuel_in;
        let exit = vm.run(&prog, &mut NullKernel, &clock, &mut fuel);
        assert_eq!(exit, Exit::Preempted);
        assert_eq!(fuel, 0);
        assert_eq!(vm.stats.instrs, fuel_in);
    }
}

//! Property tests for the GraftVM's SFI memory model.
//!
//! The central safety claim of §3.3 is that a MiSFIT-processed graft can
//! never read or write memory outside its own segment: "Code is added to
//! force the target address to fall within the range of memory allocated
//! to the graft." Here we generate *arbitrary* programs whose memory
//! accesses are each preceded by a `Clamp` (what the instrumentation pass
//! guarantees; `vino-misfit` has its own tests that it inserts them) and
//! assert that no execution ever touches the kernel region.

use proptest::prelude::*;

use vino_vm::interp::{Exit, NullKernel, Trap, Vm};
use vino_vm::isa::{AluOp, Cond, Instr, Program, Reg};
use vino_vm::mem::{AddressSpace, Protection};
use vino_sim::VirtualClock;

/// The dedicated SFI sandbox register (Wahbe et al.'s reserved
/// register): only sandboxing sequences write it, so it always holds an
/// in-segment address once the prologue clamp has run — even when a
/// branch jumps into the middle of a sandbox sequence.
const SANDBOX: Reg = Reg(14);

fn reg() -> impl Strategy<Value = Reg> {
    // User code never touches the reserved sandbox register.
    (0u8..14).prop_map(Reg)
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Xor),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
    ]
}

fn cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::LtU),
        Just(Cond::GeU),
        Just(Cond::LtS),
        Just(Cond::GeS),
    ]
}

/// One "logical" instruction of an instrumented program. Memory accesses
/// expand into `Clamp` + access, mirroring the MiSFIT pass output.
#[derive(Debug, Clone)]
enum Piece {
    Plain(Instr),
    ClampedLoad { d: Reg, addr: Reg, off: i32 },
    ClampedStore { s: Reg, addr: Reg, off: i32 },
    Branch { cond: Cond, a: Reg, b: Reg },
    Jump,
}

fn piece() -> impl Strategy<Value = Piece> {
    prop_oneof![
        (reg(), any::<i64>()).prop_map(|(d, imm)| Piece::Plain(Instr::Const { d, imm })),
        (reg(), reg()).prop_map(|(d, s)| Piece::Plain(Instr::Mov { d, s })),
        (alu_op(), reg(), reg(), reg())
            .prop_map(|(op, d, a, b)| Piece::Plain(Instr::Alu { op, d, a, b })),
        (alu_op(), reg(), reg(), any::<i32>()).prop_map(|(op, d, a, imm)| Piece::Plain(
            Instr::AluI { op, d, a, imm: imm as i64 }
        )),
        (reg(), reg(), -64i32..64).prop_map(|(d, addr, off)| Piece::ClampedLoad { d, addr, off }),
        (reg(), reg(), -64i32..64).prop_map(|(s, addr, off)| Piece::ClampedStore { s, addr, off }),
        (cond(), reg(), reg()).prop_map(|(cond, a, b)| Piece::Branch { cond, a, b }),
        Just(Piece::Jump),
    ]
}

/// Expands pieces into an instrumented program. Branch/jump targets are
/// chosen by hashing so they stay within range but are otherwise wild.
fn build_program(pieces: Vec<Piece>, seed: u32) -> Program {
    // Prologue: force the sandbox register in-segment before anything
    // runs. After this, SANDBOX is in-segment at every program point,
    // because only Clamp writes it.
    let mut instrs: Vec<Instr> = vec![Instr::Clamp { r: SANDBOX }];
    // Lay out to know the final length; memory ops take 4 slots
    // (mov SANDBOX, addr / add offset / clamp / access).
    let mut len = 1u32;
    for p in &pieces {
        len += match p {
            Piece::ClampedLoad { .. } | Piece::ClampedStore { .. } => 4,
            _ => 1,
        };
    }
    let total = len + 1; // + Halt
    let target_for = |i: u32| -> u32 { (i.wrapping_mul(2654435761).wrapping_add(seed)) % total };
    let mut k = 0u32;
    for p in pieces {
        match p {
            Piece::Plain(i) => instrs.push(i),
            Piece::ClampedLoad { d, addr, off } => {
                // The MiSFIT sandbox sequence: compute the effective
                // address in the reserved register, clamp, then access
                // through it. A branch landing mid-sequence still finds
                // an in-segment address in SANDBOX.
                instrs.push(Instr::Mov { d: SANDBOX, s: addr });
                instrs.push(Instr::AluI { op: AluOp::Add, d: SANDBOX, a: SANDBOX, imm: off as i64 });
                instrs.push(Instr::Clamp { r: SANDBOX });
                instrs.push(Instr::LoadW { d, addr: SANDBOX, off: 0 });
            }
            Piece::ClampedStore { s, addr, off } => {
                instrs.push(Instr::Mov { d: SANDBOX, s: addr });
                instrs.push(Instr::AluI { op: AluOp::Add, d: SANDBOX, a: SANDBOX, imm: off as i64 });
                instrs.push(Instr::Clamp { r: SANDBOX });
                instrs.push(Instr::StoreW { s, addr: SANDBOX, off: 0 });
            }
            Piece::Branch { cond, a, b } => {
                instrs.push(Instr::Br { cond, a, b, target: target_for(k) });
            }
            Piece::Jump => instrs.push(Instr::Jmp { target: target_for(k) }),
        }
        k += 1;
    }
    instrs.push(Instr::Halt { result: Reg(0) });
    Program::new("fuzz", instrs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary instrumented programs never write the kernel region and
    /// never fault with an SFI violation: every access lands in-segment.
    #[test]
    fn instrumented_programs_stay_in_segment(
        pieces in proptest::collection::vec(piece(), 1..60),
        seed in any::<u32>(),
    ) {
        let prog = build_program(pieces, seed);
        prog.validate().expect("generated program must be well-formed");
        let mem = AddressSpace::new(4096, 4096, Protection::Sfi);
        let mut vm = Vm::new(mem);
        // Plant a sentinel in kernel memory; it must survive.
        vm.mem.kernel_bytes_mut(0, 4).unwrap().copy_from_slice(&0xDEADBEEFu32.to_le_bytes());
        let clock = VirtualClock::new();
        let mut fuel = 5_000; // Bounded: wild jumps can loop.
        let exit = vm.run(&prog, &mut NullKernel, &clock, &mut fuel);
        // The only acceptable outcomes: normal halt, preemption, or a
        // *non-memory* trap. Any MemError means confinement failed
        // (clamped accesses cannot be unmapped or kernel-region).
        match &exit {
            Exit::Trapped(Trap::Mem(e)) => {
                prop_assert!(false, "memory fault escaped SFI: {e:?}");
            }
            _ => {}
        }
        prop_assert_eq!(vm.mem.kernel_write_count(), 0);
        let sentinel = vm.mem.kernel_bytes(0, 4).unwrap();
        prop_assert_eq!(sentinel, &0xDEADBEEFu32.to_le_bytes()[..]);
    }

    /// Clamp is idempotent and always lands in-segment, for any address.
    #[test]
    fn clamp_idempotent_and_confining(addr in any::<u64>(), size_pow in 8u32..20) {
        let mem = AddressSpace::new(1usize << size_pow, 64, Protection::Sfi);
        let c1 = mem.clamp(addr);
        prop_assert!(mem.in_segment(c1));
        prop_assert_eq!(mem.clamp(c1), c1);
    }

    /// Un-instrumented programs CAN corrupt the kernel region — the
    /// disaster SFI prevents. This is the control experiment: a direct
    /// store to a kernel address must succeed in Unprotected mode.
    #[test]
    fn unprotected_wild_store_corrupts(off in 0u64..1000, val in 1u32..u32::MAX) {
        let mem = AddressSpace::new(4096, 4096, Protection::Unprotected);
        let kaddr = mem.kernel_base() + (off & !3);
        let prog = Program::new("wild", vec![
            Instr::Const { d: Reg(1), imm: kaddr as i64 },
            Instr::Const { d: Reg(2), imm: val as i64 },
            Instr::StoreW { s: Reg(2), addr: Reg(1), off: 0 },
            Instr::Halt { result: Reg(0) },
        ]);
        let mut vm = Vm::new(mem);
        let clock = VirtualClock::new();
        let mut fuel = 100;
        let exit = vm.run(&prog, &mut NullKernel, &clock, &mut fuel);
        prop_assert_eq!(exit, Exit::Halted(0));
        prop_assert_eq!(vm.mem.kernel_write_count(), 1);
    }

    /// Fuel is an exact instruction budget: a spin loop retires exactly
    /// `fuel` instructions and then preempts (Rule 1).
    #[test]
    fn fuel_bounds_execution_exactly(fuel_in in 1u64..10_000) {
        let mem = AddressSpace::new(256, 0, Protection::Sfi);
        let prog = Program::new("spin", vec![Instr::Jmp { target: 0 }]);
        let mut vm = Vm::new(mem);
        let clock = VirtualClock::new();
        let mut fuel = fuel_in;
        let exit = vm.run(&prog, &mut NullKernel, &clock, &mut fuel);
        prop_assert_eq!(exit, Exit::Preempted);
        prop_assert_eq!(fuel, 0);
        prop_assert_eq!(vm.stats.instrs, fuel_in);
    }
}

//! Fuzz/property tests for the graft image codec and the assembler.
//!
//! The loader decodes images only after signature verification, but the
//! codec must still be total: arbitrary bytes must produce an error,
//! never a panic or a wild allocation — a kernel parses untrusted input
//! defensively even behind a MAC.

use proptest::prelude::*;

use vino_vm::asm::{assemble, disassemble, SymbolTable};
use vino_vm::encode::{decode, encode};
use vino_vm::isa::{AluOp, Cond, HostFnId, Instr, Program, Reg};

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg)
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::Xor),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
    ]
}

fn cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::LtU),
        Just(Cond::GeU),
        Just(Cond::LtS),
        Just(Cond::GeS),
    ]
}

/// Any instruction with branch targets within `len`.
fn instr(len: u32) -> impl Strategy<Value = Instr> {
    prop_oneof![
        (reg(), any::<i64>()).prop_map(|(d, imm)| Instr::Const { d, imm }),
        (reg(), reg()).prop_map(|(d, s)| Instr::Mov { d, s }),
        (alu_op(), reg(), reg(), reg()).prop_map(|(op, d, a, b)| Instr::Alu { op, d, a, b }),
        (alu_op(), reg(), reg(), any::<i64>())
            .prop_map(|(op, d, a, imm)| Instr::AluI { op, d, a, imm }),
        (reg(), reg(), any::<i32>()).prop_map(|(d, addr, off)| Instr::LoadW { d, addr, off }),
        (reg(), reg(), any::<i32>()).prop_map(|(s, addr, off)| Instr::StoreW { s, addr, off }),
        (reg(), reg(), any::<i32>()).prop_map(|(d, addr, off)| Instr::LoadB { d, addr, off }),
        (reg(), reg(), any::<i32>()).prop_map(|(s, addr, off)| Instr::StoreB { s, addr, off }),
        (0..len).prop_map(|target| Instr::Jmp { target }),
        (cond(), reg(), reg(), 0..len)
            .prop_map(|(cond, a, b, target)| Instr::Br { cond, a, b, target }),
        // Direct calls restricted to a small known-name id space so the
        // disassembly round-trip can resolve them.
        (0u32..4).prop_map(|i| Instr::Call { func: HostFnId(i) }),
        reg().prop_map(|r| Instr::CallI { target: r }),
        (0..len).prop_map(|target| Instr::CallLocal { target }),
        Just(Instr::Ret),
        reg().prop_map(|r| Instr::Halt { result: r }),
        reg().prop_map(|r| Instr::Clamp { r }),
        reg().prop_map(|r| Instr::CheckCall { r }),
        Just(Instr::Nop),
    ]
}

fn program() -> impl Strategy<Value = Program> {
    (1u32..64).prop_flat_map(|n| {
        (proptest::collection::vec(instr(n), n as usize), "[a-z]{0,12}")
            .prop_map(|(instrs, name)| Program { instrs, name })
    })
}

fn syms() -> SymbolTable {
    let mut s = SymbolTable::new();
    for i in 0..4u32 {
        s.define(format!("kfn{i}"), HostFnId(i));
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Encode/decode is the identity on arbitrary valid programs.
    #[test]
    fn codec_round_trips(p in program()) {
        let bytes = encode(&p);
        let back = decode(&bytes).expect("valid program must decode");
        prop_assert_eq!(p, back);
    }

    /// Decoding arbitrary garbage never panics.
    #[test]
    fn decode_is_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(&bytes); // Ok or Err — never a panic.
    }

    /// Decoding a valid image with a flipped byte never panics, and if
    /// it decodes, it decodes to a *valid* program (branch targets in
    /// range) — the invariant the interpreter relies on.
    #[test]
    fn decode_of_corrupted_images_stays_safe(
        p in program(),
        flip_at in any::<prop::sample::Index>(),
        flip_bits in 1u8..=255,
    ) {
        let mut bytes = encode(&p);
        let i = flip_at.index(bytes.len());
        bytes[i] ^= flip_bits;
        if let Ok(q) = decode(&bytes) {
            prop_assert!(q.validate().is_ok(), "decoded program must be internally valid");
        }
    }

    /// Disassembly reassembles to the identical instruction stream.
    #[test]
    fn disassembly_round_trips(p in program()) {
        let s = syms();
        let text = disassemble(&p, &s);
        let back = assemble(&p.name, &text, &s)
            .unwrap_or_else(|e| panic!("disassembly must reassemble: {e}\n{text}"));
        prop_assert_eq!(p.instrs, back.instrs);
    }

    /// The assembler never panics on arbitrary text.
    #[test]
    fn assembler_is_total_on_garbage(text in "[ -~\\n]{0,400}") {
        let _ = assemble("fuzz", &text, &syms());
    }
}

//! Fuzz tests for the graft image codec and the assembler, driven by a
//! seeded deterministic generator (formerly proptest).
//!
//! The loader decodes images only after signature verification, but the
//! codec must still be total: arbitrary bytes must produce an error,
//! never a panic or a wild allocation — a kernel parses untrusted input
//! defensively even behind a MAC.

use vino_sim::SplitMix64;
use vino_vm::asm::{assemble, disassemble, SymbolTable};
use vino_vm::encode::{decode, encode};
use vino_vm::isa::{AluOp, Cond, HostFnId, Instr, Program, Reg};

fn gen_reg(rng: &mut SplitMix64) -> Reg {
    Reg(rng.below(16) as u8)
}

const ALU_OPS: &[AluOp] = &[
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Rem,
    AluOp::Xor,
    AluOp::And,
    AluOp::Or,
    AluOp::Shl,
    AluOp::Shr,
];

const CONDS: &[Cond] = &[Cond::Eq, Cond::Ne, Cond::LtU, Cond::GeU, Cond::LtS, Cond::GeS];

fn gen_alu_op(rng: &mut SplitMix64) -> AluOp {
    ALU_OPS[rng.below(ALU_OPS.len() as u64) as usize]
}

fn gen_cond(rng: &mut SplitMix64) -> Cond {
    CONDS[rng.below(CONDS.len() as u64) as usize]
}

/// Any instruction with branch targets within `len`.
fn gen_instr(rng: &mut SplitMix64, len: u32) -> Instr {
    match rng.below(18) {
        0 => Instr::Const { d: gen_reg(rng), imm: rng.next_u64() as i64 },
        1 => Instr::Mov { d: gen_reg(rng), s: gen_reg(rng) },
        2 => Instr::Alu { op: gen_alu_op(rng), d: gen_reg(rng), a: gen_reg(rng), b: gen_reg(rng) },
        3 => Instr::AluI {
            op: gen_alu_op(rng),
            d: gen_reg(rng),
            a: gen_reg(rng),
            imm: rng.next_u64() as i64,
        },
        4 => Instr::LoadW { d: gen_reg(rng), addr: gen_reg(rng), off: rng.next_u64() as i32 },
        5 => Instr::StoreW { s: gen_reg(rng), addr: gen_reg(rng), off: rng.next_u64() as i32 },
        6 => Instr::LoadB { d: gen_reg(rng), addr: gen_reg(rng), off: rng.next_u64() as i32 },
        7 => Instr::StoreB { s: gen_reg(rng), addr: gen_reg(rng), off: rng.next_u64() as i32 },
        8 => Instr::Jmp { target: rng.below(len as u64) as u32 },
        9 => Instr::Br {
            cond: gen_cond(rng),
            a: gen_reg(rng),
            b: gen_reg(rng),
            target: rng.below(len as u64) as u32,
        },
        // Direct calls restricted to a small known-name id space so the
        // disassembly round-trip can resolve them.
        10 => Instr::Call { func: HostFnId(rng.below(4) as u32) },
        11 => Instr::CallI { target: gen_reg(rng) },
        12 => Instr::CallLocal { target: rng.below(len as u64) as u32 },
        13 => Instr::Ret,
        14 => Instr::Halt { result: gen_reg(rng) },
        15 => Instr::Clamp { r: gen_reg(rng) },
        16 => Instr::CheckCall { r: gen_reg(rng) },
        _ => Instr::Nop,
    }
}

fn gen_program(rng: &mut SplitMix64) -> Program {
    let n = rng.range(1, 63) as u32;
    let instrs = (0..n).map(|_| gen_instr(rng, n)).collect();
    let name_len = rng.below(13) as usize;
    let name: String = (0..name_len).map(|_| (b'a' + rng.below(26) as u8) as char).collect();
    Program { instrs, name }
}

fn syms() -> SymbolTable {
    let mut s = SymbolTable::new();
    for i in 0..4u32 {
        s.define(format!("kfn{i}"), HostFnId(i));
    }
    s
}

/// Encode/decode is the identity on arbitrary valid programs.
#[test]
fn codec_round_trips() {
    let mut rng = SplitMix64::new(0xC0DEC01);
    for _case in 0..512 {
        let p = gen_program(&mut rng);
        let bytes = encode(&p);
        let back = decode(&bytes).expect("valid program must decode");
        assert_eq!(p, back);
    }
}

/// Decoding arbitrary garbage never panics.
#[test]
fn decode_is_total_on_garbage() {
    let mut rng = SplitMix64::new(0x6A_4BA6E);
    for _case in 0..512 {
        let n = rng.below(512) as usize;
        let bytes: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
        let _ = decode(&bytes); // Ok or Err — never a panic.
    }
}

/// Decoding a valid image with a flipped byte never panics, and if it
/// decodes, it decodes to a *valid* program (branch targets in range) —
/// the invariant the interpreter relies on.
#[test]
fn decode_of_corrupted_images_stays_safe() {
    let mut rng = SplitMix64::new(0xF11_BAD);
    for _case in 0..512 {
        let p = gen_program(&mut rng);
        let mut bytes = encode(&p);
        let i = rng.below(bytes.len() as u64) as usize;
        let flip_bits = rng.range(1, 255) as u8;
        bytes[i] ^= flip_bits;
        if let Ok(q) = decode(&bytes) {
            assert!(q.validate().is_ok(), "decoded program must be internally valid");
        }
    }
}

/// Disassembly reassembles to the identical instruction stream.
#[test]
fn disassembly_round_trips() {
    let mut rng = SplitMix64::new(0xD15_A55);
    let s = syms();
    for _case in 0..512 {
        let p = gen_program(&mut rng);
        let text = disassemble(&p, &s);
        let back = assemble(&p.name, &text, &s)
            .unwrap_or_else(|e| panic!("disassembly must reassemble: {e}\n{text}"));
        assert_eq!(p.instrs, back.instrs);
    }
}

/// The assembler never panics on arbitrary printable text.
#[test]
fn assembler_is_total_on_garbage() {
    let mut rng = SplitMix64::new(0xA55E_7B1E);
    let syms = syms();
    for _case in 0..512 {
        let n = rng.below(400) as usize;
        let text: String = (0..n)
            .map(|_| {
                // Printable ASCII plus newlines, like the old regex.
                if rng.chance(1, 10) {
                    '\n'
                } else {
                    (b' ' + rng.below(95) as u8) as char
                }
            })
            .collect();
        let _ = assemble("fuzz", &text, &syms);
    }
}

//! The graft address space and SFI memory model.
//!
//! §2 of the paper: "Each graft receives its own heap and stack" and SFI
//! "is used instead of the traditional VM mechanisms to prevent illegal
//! data accesses". We model the machine's physical address space as two
//! regions:
//!
//! - the **graft segment**: a power-of-two sized, alignment-matched
//!   region holding the graft's heap, stack and any buffers the kernel
//!   shares with it (e.g. the read-ahead pattern buffer of §4.1.2);
//! - the **kernel region**: memory owned by the kernel. An *unprotected*
//!   graft that computes a wild address can read and write this region —
//!   exactly the disaster the paper is about. MiSFIT's `Clamp` pseudo-op
//!   makes that impossible by construction: after clamping, an address
//!   always falls inside the graft segment.
//!
//! Addresses that hit neither region model an unmapped page and raise a
//! fault regardless of protection.

use std::fmt;

/// Whether the executing graft was processed by MiSFIT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protection {
    /// Code went through the SFI pass; wild kernel-region accesses can
    /// still be *attempted* by a buggy rewriter, so they fault loudly.
    Sfi,
    /// Raw, un-instrumented code (the paper's "unsafe path"): kernel
    /// region accesses silently succeed, corrupting kernel state.
    Unprotected,
}

/// Memory access errors (surfaced as [`crate::interp::Trap`]s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Address not mapped by the graft segment or the kernel region.
    Unmapped { addr: u64 },
    /// An SFI-protected graft touched the kernel region (only possible
    /// if instrumentation was bypassed, which the loader prevents).
    KernelRegion { addr: u64 },
    /// Access crossed the end of a region.
    Straddle { addr: u64 },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped { addr } => write!(f, "unmapped address {addr:#x}"),
            MemError::KernelRegion { addr } => {
                write!(f, "SFI violation: kernel region access at {addr:#x}")
            }
            MemError::Straddle { addr } => write!(f, "access straddles region end at {addr:#x}"),
        }
    }
}

/// The two-region physical address space a graft executes in.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    seg_base: u64,
    seg_mask: u64,
    graft: Vec<u8>,
    kernel_base: u64,
    kernel: Vec<u8>,
    protection: Protection,
    /// Number of kernel-region writes an unprotected graft performed —
    /// the "corruption meter" integration tests assert on.
    kernel_writes: u64,
}

/// Guard-zone bytes appended to the graft segment. Wahbe et al.'s SFI
/// design places unmapped-in-spirit guard zones around each segment so a
/// clamped *base* address plus a small constant offset (here, the width
/// of the widest access) cannot escape into another region. Guard bytes
/// are graft-owned scratch: spilling into them is harmless.
pub const GUARD_BYTES: usize = 8;

/// Default base address of the graft segment.
pub const DEFAULT_SEG_BASE: u64 = 0x0010_0000;
/// Default base address of the kernel region.
pub const DEFAULT_KERNEL_BASE: u64 = 0xC000_0000;

impl AddressSpace {
    /// Creates an address space with a graft segment of `seg_size` bytes
    /// (rounded up to a power of two, minimum 256) based at
    /// [`DEFAULT_SEG_BASE`] and a kernel region of `kernel_size` bytes.
    pub fn new(seg_size: usize, kernel_size: usize, protection: Protection) -> AddressSpace {
        let size = seg_size.next_power_of_two().max(256);
        let base = DEFAULT_SEG_BASE.next_multiple_of(size as u64);
        AddressSpace {
            seg_base: base,
            seg_mask: size as u64 - 1,
            graft: vec![0; size + GUARD_BYTES],
            kernel_base: DEFAULT_KERNEL_BASE,
            kernel: vec![0; kernel_size],
            protection,
            kernel_writes: 0,
        }
    }

    /// Base address of the graft segment.
    pub fn seg_base(&self) -> u64 {
        self.seg_base
    }

    /// Size of the graft segment in bytes (a power of two), excluding
    /// the trailing [`GUARD_BYTES`] guard zone.
    pub fn seg_size(&self) -> u64 {
        self.seg_mask + 1
    }

    /// Base address of the simulated kernel region.
    pub fn kernel_base(&self) -> u64 {
        self.kernel_base
    }

    /// The protection mode this space enforces.
    pub fn protection(&self) -> Protection {
        self.protection
    }

    /// The MiSFIT sandbox operation: forces `addr` into the graft
    /// segment by masking (`(addr & mask) | base`). Matches the
    /// two-instruction and/or sequence MiSFIT emits on x86.
    pub fn clamp(&self, addr: u64) -> u64 {
        (addr & self.seg_mask) | self.seg_base
    }

    /// True if `addr` lies inside the graft segment.
    pub fn in_segment(&self, addr: u64) -> bool {
        addr >= self.seg_base && addr < self.seg_base + self.seg_size()
    }

    /// Number of kernel-region bytes writable by unprotected grafts.
    pub fn kernel_len(&self) -> usize {
        self.kernel.len()
    }

    /// How many kernel-region writes have occurred (corruption meter).
    pub fn kernel_write_count(&self) -> u64 {
        self.kernel_writes
    }

    /// Reads `len ∈ {1,4}` bytes at `addr` as a zero-extended value.
    pub fn read(&mut self, addr: u64, len: u32) -> Result<u64, MemError> {
        let bytes = self.slice(addr, len as u64, false)?;
        let mut v: u64 = 0;
        for (i, b) in bytes.iter().enumerate() {
            v |= (*b as u64) << (8 * i);
        }
        Ok(v)
    }

    /// Writes the low `len ∈ {1,4}` bytes of `val` at `addr`.
    pub fn write(&mut self, addr: u64, val: u64, len: u32) -> Result<(), MemError> {
        let is_kernel = self.region_of(addr) == Some(Region::Kernel);
        let bytes = self.slice(addr, len as u64, true)?;
        for (i, b) in bytes.iter_mut().enumerate().take(len as usize) {
            *b = (val >> (8 * i)) as u8;
        }
        if is_kernel {
            self.kernel_writes += 1;
        }
        Ok(())
    }

    /// Host-side access to graft-segment memory (no SFI semantics; used
    /// by kernel functions that exchange buffers with the graft, e.g.
    /// the shared read-ahead pattern buffer of §4.1.2).
    pub fn graft_bytes(&self, offset: usize, len: usize) -> Option<&[u8]> {
        self.graft.get(offset..offset + len)
    }

    /// Mutable host-side access to graft-segment memory.
    pub fn graft_bytes_mut(&mut self, offset: usize, len: usize) -> Option<&mut [u8]> {
        self.graft.get_mut(offset..offset + len)
    }

    /// Reads a little-endian u32 from the graft segment by offset.
    pub fn graft_read_u32(&self, offset: usize) -> Option<u32> {
        self.graft_bytes(offset, 4).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Writes a little-endian u32 into the graft segment by offset.
    pub fn graft_write_u32(&mut self, offset: usize, v: u32) -> Option<()> {
        self.graft_bytes_mut(offset, 4).map(|b| b.copy_from_slice(&v.to_le_bytes()))
    }

    /// Host-side read of kernel-region memory (for corruption checks).
    pub fn kernel_bytes(&self, offset: usize, len: usize) -> Option<&[u8]> {
        self.kernel.get(offset..offset + len)
    }

    /// Host-side write of kernel-region memory (to set up sentinels).
    pub fn kernel_bytes_mut(&mut self, offset: usize, len: usize) -> Option<&mut [u8]> {
        self.kernel.get_mut(offset..offset + len)
    }

    fn region_of(&self, addr: u64) -> Option<Region> {
        // The guard zone counts as graft memory for access purposes, but
        // clamp never produces an address inside it.
        if addr >= self.seg_base && addr < self.seg_base + self.graft.len() as u64 {
            Some(Region::Graft)
        } else if addr >= self.kernel_base && addr < self.kernel_base + self.kernel.len() as u64 {
            Some(Region::Kernel)
        } else {
            None
        }
    }

    fn slice(&mut self, addr: u64, len: u64, _write: bool) -> Result<&mut [u8], MemError> {
        match self.region_of(addr) {
            Some(Region::Graft) => {
                let off = (addr - self.seg_base) as usize;
                let end = off + len as usize;
                if end > self.graft.len() {
                    return Err(MemError::Straddle { addr });
                }
                Ok(&mut self.graft[off..end])
            }
            Some(Region::Kernel) => {
                if self.protection == Protection::Sfi {
                    // Instrumented code cannot reach here (Clamp precedes
                    // every access); if it does, the rewriter was
                    // bypassed and we fault loudly instead of corrupting.
                    return Err(MemError::KernelRegion { addr });
                }
                let off = (addr - self.kernel_base) as usize;
                let end = off + len as usize;
                if end > self.kernel.len() {
                    return Err(MemError::Straddle { addr });
                }
                Ok(&mut self.kernel[off..end])
            }
            None => Err(MemError::Unmapped { addr }),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Region {
    Graft,
    Kernel,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(prot: Protection) -> AddressSpace {
        AddressSpace::new(4096, 4096, prot)
    }

    #[test]
    fn segment_is_power_of_two_and_aligned() {
        let m = AddressSpace::new(5000, 0, Protection::Sfi);
        assert_eq!(m.seg_size(), 8192);
        assert_eq!(m.seg_base() % m.seg_size(), 0);
    }

    #[test]
    fn clamp_always_lands_in_segment() {
        let m = space(Protection::Sfi);
        for addr in [0u64, 1, 0xdead_beef, u64::MAX, m.kernel_base() + 10] {
            let c = m.clamp(addr);
            assert!(m.in_segment(c), "clamp({addr:#x}) = {c:#x} escaped the segment");
        }
    }

    #[test]
    fn clamp_is_identity_inside_segment() {
        let m = space(Protection::Sfi);
        for off in [0u64, 4, 100, m.seg_size() - 1] {
            let addr = m.seg_base() + off;
            assert_eq!(m.clamp(addr), addr);
        }
    }

    #[test]
    fn read_write_word_round_trip() {
        let mut m = space(Protection::Sfi);
        let a = m.seg_base() + 16;
        m.write(a, 0xAABB_CCDD, 4).unwrap();
        assert_eq!(m.read(a, 4).unwrap(), 0xAABB_CCDD);
        // Little-endian byte view.
        assert_eq!(m.read(a, 1).unwrap(), 0xDD);
    }

    #[test]
    fn sfi_mode_faults_on_kernel_region() {
        let mut m = space(Protection::Sfi);
        let k = m.kernel_base();
        assert_eq!(m.write(k, 1, 4), Err(MemError::KernelRegion { addr: k }));
        assert_eq!(m.read(k, 4), Err(MemError::KernelRegion { addr: k }));
        assert_eq!(m.kernel_write_count(), 0);
    }

    #[test]
    fn unprotected_mode_corrupts_kernel_region() {
        let mut m = space(Protection::Unprotected);
        let k = m.kernel_base();
        m.write(k + 8, 0x41414141, 4).unwrap();
        assert_eq!(m.read(k + 8, 4).unwrap(), 0x41414141);
        assert_eq!(m.kernel_write_count(), 1);
        assert_eq!(m.kernel_bytes(8, 4).unwrap(), &0x41414141u32.to_le_bytes());
    }

    #[test]
    fn unmapped_addresses_fault() {
        let mut m = space(Protection::Unprotected);
        assert!(matches!(m.read(0, 4), Err(MemError::Unmapped { .. })));
        assert!(matches!(m.write(u64::MAX - 3, 0, 4), Err(MemError::Unmapped { .. })));
    }

    #[test]
    fn straddling_access_faults() {
        let mut m = space(Protection::Sfi);
        // A word access near the segment end spills into the guard zone:
        // allowed (this is the point of the guard zone).
        let near_end = m.seg_base() + m.seg_size() - 2;
        assert!(m.write(near_end, 0, 4).is_ok());
        // Past the guard zone the access straddles and faults.
        let past_guard = m.seg_base() + m.seg_size() + GUARD_BYTES as u64 - 2;
        assert!(matches!(m.write(past_guard, 0, 4), Err(MemError::Straddle { .. })));
        // A one-byte access at the same spot is fine.
        assert!(m.write(past_guard, 0, 1).is_ok());
    }

    #[test]
    fn host_side_graft_buffer_access() {
        let mut m = space(Protection::Sfi);
        m.graft_write_u32(64, 7).unwrap();
        assert_eq!(m.graft_read_u32(64), Some(7));
        // VM-side sees the same bytes.
        assert_eq!(m.read(m.seg_base() + 64, 4).unwrap(), 7);
        assert!(m.graft_read_u32(m.seg_size() as usize + GUARD_BYTES).is_none());
    }
}

//! Binary encoding of graft programs.
//!
//! The paper's grafts are shipped to the kernel as compiled object code
//! carrying a cryptographic signature computed by MiSFIT (§3.3). This
//! module defines the byte format of that object code: `vino-misfit`
//! signs exactly these bytes and the kernel loader decodes them after
//! verifying the signature, so any bit-flip in transit breaks the
//! signature check before it can break the decoder.
//!
//! The format is deliberately simple and versioned:
//!
//! ```text
//! magic  "GVM1"                       4 bytes
//! name   u16 length + UTF-8 bytes
//! count  u32 instruction count
//! body   one variable-length record per instruction
//! ```

use std::fmt;

use crate::isa::{AluOp, Cond, HostFnId, Instr, Program, Reg};

/// Magic bytes identifying a GraftVM image, version 1.
pub const MAGIC: &[u8; 4] = b"GVM1";

/// Errors produced when decoding a graft image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The image does not start with [`MAGIC`].
    BadMagic,
    /// The byte stream ended mid-record.
    Truncated,
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Register index not in `0..16`.
    BadReg(u8),
    /// Unknown ALU-op byte.
    BadAluOp(u8),
    /// Unknown condition byte.
    BadCond(u8),
    /// The program name is not valid UTF-8.
    BadName,
    /// Bytes remained after the declared instruction count.
    TrailingBytes,
    /// A branch target points outside the program.
    BadTarget(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad magic"),
            DecodeError::Truncated => write!(f, "truncated image"),
            DecodeError::BadOpcode(b) => write!(f, "bad opcode {b}"),
            DecodeError::BadReg(b) => write!(f, "bad register {b}"),
            DecodeError::BadAluOp(b) => write!(f, "bad alu op {b}"),
            DecodeError::BadCond(b) => write!(f, "bad condition {b}"),
            DecodeError::BadName => write!(f, "name is not UTF-8"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes"),
            DecodeError::BadTarget(t) => write!(f, "branch target {t} out of range"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serializes a program to image bytes.
pub fn encode(prog: &Program) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + prog.instrs.len() * 8);
    out.extend_from_slice(MAGIC);
    let name = prog.name.as_bytes();
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(&(prog.instrs.len() as u32).to_le_bytes());
    for i in &prog.instrs {
        encode_instr(i, &mut out);
    }
    out
}

fn encode_instr(i: &Instr, out: &mut Vec<u8>) {
    match *i {
        Instr::Const { d, imm } => {
            out.push(0);
            out.push(d.0);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Instr::Mov { d, s } => {
            out.push(1);
            out.push(d.0);
            out.push(s.0);
        }
        Instr::Alu { op, d, a, b } => {
            out.push(2);
            out.push(alu_byte(op));
            out.push(d.0);
            out.push(a.0);
            out.push(b.0);
        }
        Instr::AluI { op, d, a, imm } => {
            out.push(3);
            out.push(alu_byte(op));
            out.push(d.0);
            out.push(a.0);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Instr::LoadW { d, addr, off } => mem_instr(out, 4, d, addr, off),
        Instr::StoreW { s, addr, off } => mem_instr(out, 5, s, addr, off),
        Instr::LoadB { d, addr, off } => mem_instr(out, 6, d, addr, off),
        Instr::StoreB { s, addr, off } => mem_instr(out, 7, s, addr, off),
        Instr::Jmp { target } => {
            out.push(8);
            out.extend_from_slice(&target.to_le_bytes());
        }
        Instr::Br { cond, a, b, target } => {
            out.push(9);
            out.push(cond_byte(cond));
            out.push(a.0);
            out.push(b.0);
            out.extend_from_slice(&target.to_le_bytes());
        }
        Instr::Call { func } => {
            out.push(10);
            out.extend_from_slice(&func.0.to_le_bytes());
        }
        Instr::CallI { target } => {
            out.push(11);
            out.push(target.0);
        }
        Instr::CallLocal { target } => {
            out.push(12);
            out.extend_from_slice(&target.to_le_bytes());
        }
        Instr::Ret => out.push(13),
        Instr::Halt { result } => {
            out.push(14);
            out.push(result.0);
        }
        Instr::Clamp { r } => {
            out.push(15);
            out.push(r.0);
        }
        Instr::CheckCall { r } => {
            out.push(16);
            out.push(r.0);
        }
        Instr::Nop => out.push(17),
    }
}

fn mem_instr(out: &mut Vec<u8>, opcode: u8, r: Reg, addr: Reg, off: i32) {
    out.push(opcode);
    out.push(r.0);
    out.push(addr.0);
    out.extend_from_slice(&off.to_le_bytes());
}

/// Deserializes image bytes back into a [`Program`].
pub fn decode(bytes: &[u8]) -> Result<Program, DecodeError> {
    let mut c = Cursor { bytes, pos: 0 };
    if c.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let name_len = c.u16()? as usize;
    let name =
        std::str::from_utf8(c.take(name_len)?).map_err(|_| DecodeError::BadName)?.to_string();
    let count = c.u32()? as usize;
    let mut instrs = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        instrs.push(decode_instr(&mut c)?);
    }
    if c.pos != bytes.len() {
        return Err(DecodeError::TrailingBytes);
    }
    let prog = Program { instrs, name };
    if let Err(_msg) = prog.validate() {
        // Surface the first wild target for diagnostics.
        let bad = prog
            .instrs
            .iter()
            .filter_map(|i| i.branch_target())
            .find(|t| *t as usize >= prog.instrs.len())
            .unwrap_or(0);
        return Err(DecodeError::BadTarget(bad));
    }
    Ok(prog)
}

fn decode_instr(c: &mut Cursor<'_>) -> Result<Instr, DecodeError> {
    let op = c.u8()?;
    Ok(match op {
        0 => Instr::Const { d: c.reg()?, imm: c.i64()? },
        1 => Instr::Mov { d: c.reg()?, s: c.reg()? },
        2 => Instr::Alu { op: c.alu()?, d: c.reg()?, a: c.reg()?, b: c.reg()? },
        3 => Instr::AluI { op: c.alu()?, d: c.reg()?, a: c.reg()?, imm: c.i64()? },
        4 => Instr::LoadW { d: c.reg()?, addr: c.reg()?, off: c.i32()? },
        5 => Instr::StoreW { s: c.reg()?, addr: c.reg()?, off: c.i32()? },
        6 => Instr::LoadB { d: c.reg()?, addr: c.reg()?, off: c.i32()? },
        7 => Instr::StoreB { s: c.reg()?, addr: c.reg()?, off: c.i32()? },
        8 => Instr::Jmp { target: c.u32()? },
        9 => Instr::Br { cond: c.cond()?, a: c.reg()?, b: c.reg()?, target: c.u32()? },
        10 => Instr::Call { func: HostFnId(c.u32()?) },
        11 => Instr::CallI { target: c.reg()? },
        12 => Instr::CallLocal { target: c.u32()? },
        13 => Instr::Ret,
        14 => Instr::Halt { result: c.reg()? },
        15 => Instr::Clamp { r: c.reg()? },
        16 => Instr::CheckCall { r: c.reg()? },
        17 => Instr::Nop,
        other => return Err(DecodeError::BadOpcode(other)),
    })
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.bytes.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn i32(&mut self) -> Result<i32, DecodeError> {
        Ok(self.u32()? as i32)
    }
    fn i64(&mut self) -> Result<i64, DecodeError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
    fn reg(&mut self) -> Result<Reg, DecodeError> {
        let b = self.u8()?;
        Reg::new(b).ok_or(DecodeError::BadReg(b))
    }
    fn alu(&mut self) -> Result<AluOp, DecodeError> {
        let b = self.u8()?;
        Ok(match b {
            0 => AluOp::Add,
            1 => AluOp::Sub,
            2 => AluOp::Mul,
            3 => AluOp::Div,
            4 => AluOp::Rem,
            5 => AluOp::Xor,
            6 => AluOp::And,
            7 => AluOp::Or,
            8 => AluOp::Shl,
            9 => AluOp::Shr,
            other => return Err(DecodeError::BadAluOp(other)),
        })
    }
    fn cond(&mut self) -> Result<Cond, DecodeError> {
        let b = self.u8()?;
        Ok(match b {
            0 => Cond::Eq,
            1 => Cond::Ne,
            2 => Cond::LtU,
            3 => Cond::GeU,
            4 => Cond::LtS,
            5 => Cond::GeS,
            other => return Err(DecodeError::BadCond(other)),
        })
    }
}

fn alu_byte(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Mul => 2,
        AluOp::Div => 3,
        AluOp::Rem => 4,
        AluOp::Xor => 5,
        AluOp::And => 6,
        AluOp::Or => 7,
        AluOp::Shl => 8,
        AluOp::Shr => 9,
    }
}

fn cond_byte(c: Cond) -> u8 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::LtU => 2,
        Cond::GeU => 3,
        Cond::LtS => 4,
        Cond::GeS => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        Program::new(
            "sample-graft",
            vec![
                Instr::Const { d: Reg(1), imm: -7 },
                Instr::Mov { d: Reg(2), s: Reg(1) },
                Instr::Alu { op: AluOp::Xor, d: Reg(3), a: Reg(1), b: Reg(2) },
                Instr::AluI { op: AluOp::Shl, d: Reg(3), a: Reg(3), imm: 2 },
                Instr::LoadW { d: Reg(4), addr: Reg(3), off: -16 },
                Instr::StoreB { s: Reg(4), addr: Reg(3), off: 1 },
                Instr::Jmp { target: 7 },
                Instr::Br { cond: Cond::GeS, a: Reg(1), b: Reg(2), target: 0 },
                Instr::Call { func: HostFnId(42) },
                Instr::CallI { target: Reg(5) },
                Instr::CallLocal { target: 11 },
                Instr::Ret,
                Instr::Clamp { r: Reg(6) },
                Instr::CheckCall { r: Reg(6) },
                Instr::Nop,
                Instr::Halt { result: Reg(0) },
            ],
        )
    }

    #[test]
    fn round_trip() {
        let p = sample();
        let bytes = encode(&p);
        let q = decode(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn magic_is_checked() {
        let mut bytes = encode(&sample());
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode(&sample());
        for cut in [3, 5, 10, bytes.len() - 1] {
            assert!(
                matches!(decode(&bytes[..cut]), Err(DecodeError::Truncated)),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = encode(&sample());
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(DecodeError::TrailingBytes));
    }

    #[test]
    fn bad_opcode_detected() {
        let p = Program::new("t", vec![Instr::Nop]);
        let mut bytes = encode(&p);
        let last = bytes.len() - 1;
        bytes[last] = 200;
        assert_eq!(decode(&bytes), Err(DecodeError::BadOpcode(200)));
    }

    #[test]
    fn bad_register_detected() {
        let p = Program::new("t", vec![Instr::Halt { result: Reg(0) }]);
        let mut bytes = encode(&p);
        let last = bytes.len() - 1;
        bytes[last] = 31; // register operand of Halt
        assert_eq!(decode(&bytes), Err(DecodeError::BadReg(31)));
    }

    #[test]
    fn wild_branch_target_detected() {
        let p = Program { instrs: vec![Instr::Jmp { target: 99 }], name: "t".into() };
        let bytes = encode(&p);
        assert_eq!(decode(&bytes), Err(DecodeError::BadTarget(99)));
    }

    #[test]
    fn empty_program_round_trips() {
        let p = Program::new("", vec![]);
        assert_eq!(decode(&encode(&p)).unwrap(), p);
    }

    #[test]
    fn unicode_name_round_trips() {
        let p = Program::new("graft-προφήτης", vec![Instr::Nop]);
        assert_eq!(decode(&encode(&p)).unwrap().name, "graft-προφήτης");
    }
}

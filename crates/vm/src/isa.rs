//! The GraftVM instruction set.
//!
//! A 16-register, 64-bit machine with byte-addressed memory, 32-bit word
//! loads/stores (the paper's platform is a 32-bit Pentium: a "word" in
//! §4.4 is four bytes), direct and indirect calls into the kernel's
//! graft-callable function table, local (intra-graft) calls, and the two
//! SFI pseudo-instructions (`Clamp`, `CheckCall`) that the MiSFIT pass
//! inserts.
//!
//! ## Calling convention
//!
//! Host (kernel) calls pass arguments in `r1..=r4` and return the result
//! in `r0`. `r15` is conventionally the graft's stack pointer within its
//! own segment; the hardware does not enforce this. Local calls push the
//! return address on an internal call stack (not graft memory), bounded
//! by [`crate::interp::VmConfig::max_call_depth`].

use std::fmt;

/// One of the sixteen general-purpose registers `r0`–`r15`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Constructs a register, validating the index.
    pub fn new(i: u8) -> Option<Reg> {
        (i < 16).then_some(Reg(i))
    }

    /// Register index as usize for register-file access.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of a kernel (host) function in the graft-callable table.
///
/// Host-function identifiers play the role of function *addresses* in the
/// paper: direct calls are audited at link time against the callable
/// list, and indirect calls are checked at run time by probing a hash
/// table of these ids (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostFnId(pub u32);

impl fmt::Display for HostFnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// Binary ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division; traps on zero divisor.
    Div,
    /// Unsigned remainder; traps on zero divisor.
    Rem,
    /// Bitwise exclusive or.
    Xor,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Logical shift left (shift amount masked to 63).
    Shl,
    /// Logical shift right (shift amount masked to 63).
    Shr,
}

/// Branch conditions comparing two registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    LtU,
    /// Unsigned greater-or-equal.
    GeU,
    /// Signed less-than.
    LtS,
    /// Signed greater-or-equal.
    GeS,
}

/// A GraftVM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `d = imm` (sign-extended 64-bit immediate).
    Const { d: Reg, imm: i64 },
    /// `d = s`.
    Mov { d: Reg, s: Reg },
    /// `d = a <op> b`.
    Alu { op: AluOp, d: Reg, a: Reg, b: Reg },
    /// `d = a <op> imm`.
    AluI { op: AluOp, d: Reg, a: Reg, imm: i64 },
    /// Load a 32-bit word: `d = zext(mem32[addr + off])`.
    LoadW { d: Reg, addr: Reg, off: i32 },
    /// Store a 32-bit word: `mem32[addr + off] = s as u32`.
    StoreW { s: Reg, addr: Reg, off: i32 },
    /// Load a byte: `d = zext(mem8[addr + off])`.
    LoadB { d: Reg, addr: Reg, off: i32 },
    /// Store a byte: `mem8[addr + off] = s as u8`.
    StoreB { s: Reg, addr: Reg, off: i32 },
    /// Unconditional jump to instruction index `target`.
    Jmp { target: u32 },
    /// Conditional branch: `if a <cond> b { pc = target }`.
    Br { cond: Cond, a: Reg, b: Reg, target: u32 },
    /// Direct call of kernel function `func` (checked at link time).
    Call { func: HostFnId },
    /// Indirect call of the kernel function whose id is in `target`
    /// (checked at run time by the preceding [`Instr::CheckCall`] in
    /// MiSFIT-processed code; unchecked — and therefore rejected by the
    /// kernel loader — otherwise).
    CallI { target: Reg },
    /// Intra-graft call to instruction index `target`.
    CallLocal { target: u32 },
    /// Return from an intra-graft call.
    Ret,
    /// Stop execution with the value of `result` as the graft's result.
    Halt { result: Reg },
    /// SFI pseudo-op: force the address in `r` into the graft segment
    /// (`r = (r & seg_mask) | seg_base`). Inserted by MiSFIT before each
    /// load/store; costs [`vino_sim::costs::SFI_CLAMP_CYCLES`].
    Clamp { r: Reg },
    /// SFI pseudo-op: probe the graft-callable hash table for the id in
    /// `r`; traps with [`crate::interp::Trap::ForbiddenCall`] on a miss.
    /// Inserted by MiSFIT before each indirect call; costs
    /// [`vino_sim::costs::SFI_CALLCHECK_CYCLES`].
    CheckCall { r: Reg },
    /// No operation (assembler padding); costs one cycle.
    Nop,
}

impl Instr {
    /// True for instructions that read or write graft memory and hence
    /// need an SFI sandbox op in protected code.
    pub fn is_mem_access(&self) -> bool {
        matches!(
            self,
            Instr::LoadW { .. } | Instr::StoreW { .. } | Instr::LoadB { .. } | Instr::StoreB { .. }
        )
    }

    /// The address register of a memory access, if this is one.
    pub fn mem_addr_reg(&self) -> Option<Reg> {
        match *self {
            Instr::LoadW { addr, .. }
            | Instr::StoreW { addr, .. }
            | Instr::LoadB { addr, .. }
            | Instr::StoreB { addr, .. } => Some(addr),
            _ => None,
        }
    }

    /// The branch/jump target, if this instruction has one.
    pub fn branch_target(&self) -> Option<u32> {
        match *self {
            Instr::Jmp { target } | Instr::Br { target, .. } | Instr::CallLocal { target } => {
                Some(target)
            }
            _ => None,
        }
    }

    /// Rewrites the branch/jump target (used by the MiSFIT relocation
    /// pass when instrumentation shifts instruction indices).
    pub fn with_branch_target(self, new: u32) -> Instr {
        match self {
            Instr::Jmp { .. } => Instr::Jmp { target: new },
            Instr::Br { cond, a, b, .. } => Instr::Br { cond, a, b, target: new },
            Instr::CallLocal { .. } => Instr::CallLocal { target: new },
            other => other,
        }
    }
}

/// A complete graft program: instructions plus metadata the linker needs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// The instruction stream; execution starts at index 0.
    pub instrs: Vec<Instr>,
    /// Human-readable graft name (also recorded in the signed image).
    pub name: String,
}

impl Program {
    /// Creates a named program from an instruction vector.
    pub fn new(name: impl Into<String>, instrs: Vec<Instr>) -> Program {
        Program { instrs, name: name.into() }
    }

    /// Every kernel function the program calls *directly*. The dynamic
    /// linker audits this set against the graft-callable list (§3.3:
    /// "Direct function calls are checked when grafts are dynamically
    /// linked into the kernel").
    pub fn direct_callees(&self) -> Vec<HostFnId> {
        let mut ids: Vec<HostFnId> = self
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Call { func } => Some(*func),
                _ => None,
            })
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// True if the program contains any indirect call.
    pub fn has_indirect_calls(&self) -> bool {
        self.instrs.iter().any(|i| matches!(i, Instr::CallI { .. }))
    }

    /// Counts instructions satisfying `pred` (used by instrumentation
    /// statistics and the MiSFIT micro-overhead experiment E2).
    pub fn count(&self, pred: impl Fn(&Instr) -> bool) -> usize {
        self.instrs.iter().filter(|i| pred(i)).count()
    }

    /// Validates static well-formedness: all branch targets in range.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.instrs.len() as u32;
        for (pc, i) in self.instrs.iter().enumerate() {
            if let Some(t) = i.branch_target() {
                if t >= n {
                    return Err(format!("instr {pc}: branch target {t} out of range (len {n})"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_bounds() {
        assert!(Reg::new(0).is_some());
        assert!(Reg::new(15).is_some());
        assert!(Reg::new(16).is_none());
        assert_eq!(Reg(7).to_string(), "r7");
    }

    #[test]
    fn mem_access_classification() {
        let l = Instr::LoadW { d: Reg(1), addr: Reg(2), off: 0 };
        let a = Instr::Alu { op: AluOp::Add, d: Reg(1), a: Reg(1), b: Reg(2) };
        assert!(l.is_mem_access());
        assert_eq!(l.mem_addr_reg(), Some(Reg(2)));
        assert!(!a.is_mem_access());
        assert_eq!(a.mem_addr_reg(), None);
    }

    #[test]
    fn branch_target_rewrite() {
        let b = Instr::Br { cond: Cond::Eq, a: Reg(0), b: Reg(1), target: 5 };
        assert_eq!(b.branch_target(), Some(5));
        let b2 = b.with_branch_target(9);
        assert_eq!(b2.branch_target(), Some(9));
        // Non-branch instructions pass through unchanged.
        let m = Instr::Mov { d: Reg(0), s: Reg(1) };
        assert_eq!(m.with_branch_target(3), m);
    }

    #[test]
    fn direct_callees_sorted_deduped() {
        let p = Program::new(
            "t",
            vec![
                Instr::Call { func: HostFnId(9) },
                Instr::Call { func: HostFnId(2) },
                Instr::Call { func: HostFnId(9) },
                Instr::Halt { result: Reg(0) },
            ],
        );
        assert_eq!(p.direct_callees(), vec![HostFnId(2), HostFnId(9)]);
        assert!(!p.has_indirect_calls());
    }

    #[test]
    fn validate_rejects_wild_branch() {
        let p = Program::new("t", vec![Instr::Jmp { target: 10 }]);
        assert!(p.validate().is_err());
        let ok = Program::new("t", vec![Instr::Jmp { target: 0 }]);
        assert!(ok.validate().is_ok());
    }
}

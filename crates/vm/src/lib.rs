//! GraftVM — the virtual instruction set kernel extensions compile to.
//!
//! The paper's grafts are C++ compiled to i386 machine code and rewritten
//! by the MiSFIT tool. This reproduction replaces raw x86 with a small
//! register ISA whose interpreter charges calibrated cycle costs to the
//! simulation clock (see `vino_sim::costs`), so the per-instruction SFI
//! overheads the paper reports (2–5 cycles per load/store, 10–15 cycles
//! per indirect call) are *measured* properties of instrumented programs
//! rather than asserted constants.
//!
//! The crate provides:
//!
//! - [`isa`] — the instruction set and [`isa::Program`] container;
//! - [`asm`] — a textual assembler/disassembler used by tests, examples
//!   and the benchmark grafts;
//! - [`mem`] — the sandboxed address space: a power-of-two graft segment
//!   plus a simulated kernel region that *unprotected* grafts can corrupt
//!   (this is what MiSFIT instrumentation prevents);
//! - [`interp`] — the interpreter with fuel-based preemption and traps;
//! - [`encode`] — the binary graft-image encoding that `vino-misfit`
//!   signs and the kernel's loader verifies.

pub mod asm;
pub mod encode;
pub mod interp;
pub mod isa;
pub mod mem;

pub use asm::{assemble, disassemble, AsmError, SymbolTable};
pub use interp::{Exit, KernelApi, NullKernel, Trap, Vm, VmConfig};
pub use isa::{AluOp, Cond, HostFnId, Instr, Program, Reg};
pub use mem::{AddressSpace, MemError, Protection};

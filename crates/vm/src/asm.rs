//! A textual assembler and disassembler for GraftVM programs.
//!
//! Grafts in this reproduction are written in assembly the way the
//! paper's grafts were written in C++: it is the source form the MiSFIT
//! pass consumes. The syntax, one instruction per line:
//!
//! ```text
//! ; a comment
//! loop:                       ; a label
//!     const r1, 42            ; r1 = 42
//!     mov   r2, r1
//!     add   r3, r1, r2        ; register ALU: add sub mul div rem xor and or shl shr
//!     addi  r3, r1, -4        ; immediate ALU: <op>i
//!     loadw r1, [r2+4]        ; 32-bit word load
//!     storew r1, [r2-4]
//!     loadb r1, [r2+0]        ; byte load/store
//!     storeb r1, [r2+0]
//!     jmp   loop
//!     beq   r1, r2, loop      ; beq bne bltu bgeu blts bges
//!     call  $prefetch         ; direct kernel call, resolved by name
//!     calli r5                ; indirect kernel call (id in r5)
//!     calll subroutine        ; intra-graft call
//!     ret
//!     halt  r0
//!     clamp r1                ; SFI pseudo-ops (normally inserted by MiSFIT)
//!     checkcall r5
//!     nop
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::isa::{AluOp, Cond, HostFnId, Instr, Program, Reg};

/// Maps kernel-function names to their ids for `call $name` resolution.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    by_name: HashMap<String, HostFnId>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Registers `name` with `id`; replaces any previous binding.
    pub fn define(&mut self, name: impl Into<String>, id: HostFnId) {
        self.by_name.insert(name.into(), id);
    }

    /// Looks up a function id by name.
    pub fn lookup(&self, name: &str) -> Option<HostFnId> {
        self.by_name.get(name).copied()
    }

    /// Reverse lookup for the disassembler.
    pub fn name_of(&self, id: HostFnId) -> Option<&str> {
        self.by_name.iter().find(|(_, v)| **v == id).map(|(k, _)| k.as_str())
    }
}

/// Assembly errors with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError { line, msg: msg.into() }
}

/// Assembles `src` into a [`Program`] named `name`, resolving `$name`
/// direct calls through `syms`.
pub fn assemble(name: &str, src: &str, syms: &SymbolTable) -> Result<Program, AsmError> {
    // Pass 1: strip comments, collect labels and instruction lines.
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut lines: Vec<(usize, String)> = Vec::new();
    let mut idx: u32 = 0;
    for (lineno, raw) in src.lines().enumerate() {
        let lineno = lineno + 1;
        let text = raw.split(';').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut rest = text;
        // A line may carry one label prefix ("loop: add ..." or bare "loop:").
        while let Some(colon) = rest.find(':') {
            let (lab, tail) = rest.split_at(colon);
            let lab = lab.trim();
            if lab.is_empty() || !lab.chars().all(|c| c.is_alphanumeric() || c == '_') {
                break;
            }
            if labels.insert(lab.to_string(), idx).is_some() {
                return Err(err(lineno, format!("duplicate label `{lab}`")));
            }
            rest = tail[1..].trim();
        }
        if !rest.is_empty() {
            lines.push((lineno, rest.to_string()));
            idx += 1;
        }
    }

    // Pass 2: encode.
    let mut instrs = Vec::with_capacity(lines.len());
    for (lineno, text) in &lines {
        instrs.push(parse_instr(*lineno, text, &labels, syms)?);
    }
    let prog = Program::new(name, instrs);
    prog.validate().map_err(|m| err(0, m))?;
    Ok(prog)
}

fn parse_instr(
    line: usize,
    text: &str,
    labels: &HashMap<String, u32>,
    syms: &SymbolTable,
) -> Result<Instr, AsmError> {
    let (op, rest) = match text.split_once(char::is_whitespace) {
        Some((o, r)) => (o, r.trim()),
        None => (text, ""),
    };
    let args: Vec<&str> =
        if rest.is_empty() { Vec::new() } else { rest.split(',').map(str::trim).collect() };
    let nargs = |n: usize| -> Result<(), AsmError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(err(line, format!("`{op}` expects {n} operand(s), got {}", args.len())))
        }
    };
    let reg = |s: &str| -> Result<Reg, AsmError> {
        let body = s
            .strip_prefix('r')
            .ok_or_else(|| err(line, format!("expected register, got `{s}`")))?;
        let i: u8 = body.parse().map_err(|_| err(line, format!("bad register `{s}`")))?;
        Reg::new(i).ok_or_else(|| err(line, format!("register out of range `{s}`")))
    };
    let imm = |s: &str| -> Result<i64, AsmError> {
        let (neg, body) = match s.strip_prefix('-') {
            Some(b) => (true, b),
            None => (false, s),
        };
        let v = if let Some(hex) = body.strip_prefix("0x") {
            i64::from_str_radix(hex, 16)
        } else {
            body.parse()
        }
        .map_err(|_| err(line, format!("bad immediate `{s}`")))?;
        Ok(if neg { -v } else { v })
    };
    let label = |s: &str| -> Result<u32, AsmError> {
        labels.get(s).copied().ok_or_else(|| err(line, format!("unknown label `{s}`")))
    };
    // `[rN+off]` / `[rN-off]` / `[rN]`.
    let memop = |s: &str| -> Result<(Reg, i32), AsmError> {
        let inner = s
            .strip_prefix('[')
            .and_then(|t| t.strip_suffix(']'))
            .ok_or_else(|| err(line, format!("expected [reg+off], got `{s}`")))?;
        let (r, off) = if let Some(p) = inner.find(['+', '-']) {
            let (rs, rest) = inner.split_at(p);
            let o: i64 = imm(rest.trim())?;
            (rs.trim(), o)
        } else {
            (inner.trim(), 0)
        };
        let off: i32 =
            off.try_into().map_err(|_| err(line, format!("offset out of range in `{s}`")))?;
        Ok((reg(r)?, off))
    };

    let alu_reg = |op: AluOp, args: &[&str]| -> Result<Instr, AsmError> {
        Ok(Instr::Alu { op, d: reg(args[0])?, a: reg(args[1])?, b: reg(args[2])? })
    };
    let alu_imm = |op: AluOp, args: &[&str]| -> Result<Instr, AsmError> {
        Ok(Instr::AluI { op, d: reg(args[0])?, a: reg(args[1])?, imm: imm(args[2])? })
    };
    let branch = |cond: Cond, args: &[&str]| -> Result<Instr, AsmError> {
        Ok(Instr::Br { cond, a: reg(args[0])?, b: reg(args[1])?, target: label(args[2])? })
    };

    match op {
        "const" => {
            nargs(2)?;
            Ok(Instr::Const { d: reg(args[0])?, imm: imm(args[1])? })
        }
        "mov" => {
            nargs(2)?;
            Ok(Instr::Mov { d: reg(args[0])?, s: reg(args[1])? })
        }
        "add" | "sub" | "mul" | "div" | "rem" | "xor" | "and" | "or" | "shl" | "shr" => {
            nargs(3)?;
            alu_reg(alu_op(op), &args)
        }
        "addi" | "subi" | "muli" | "divi" | "remi" | "xori" | "andi" | "ori" | "shli" | "shri" => {
            nargs(3)?;
            alu_imm(alu_op(&op[..op.len() - 1]), &args)
        }
        "loadw" => {
            nargs(2)?;
            let (addr, off) = memop(args[1])?;
            Ok(Instr::LoadW { d: reg(args[0])?, addr, off })
        }
        "storew" => {
            nargs(2)?;
            let (addr, off) = memop(args[1])?;
            Ok(Instr::StoreW { s: reg(args[0])?, addr, off })
        }
        "loadb" => {
            nargs(2)?;
            let (addr, off) = memop(args[1])?;
            Ok(Instr::LoadB { d: reg(args[0])?, addr, off })
        }
        "storeb" => {
            nargs(2)?;
            let (addr, off) = memop(args[1])?;
            Ok(Instr::StoreB { s: reg(args[0])?, addr, off })
        }
        "jmp" => {
            nargs(1)?;
            Ok(Instr::Jmp { target: label(args[0])? })
        }
        "beq" => branch(Cond::Eq, &{
            nargs(3)?;
            args.clone()
        }),
        "bne" => branch(Cond::Ne, &{
            nargs(3)?;
            args.clone()
        }),
        "bltu" => branch(Cond::LtU, &{
            nargs(3)?;
            args.clone()
        }),
        "bgeu" => branch(Cond::GeU, &{
            nargs(3)?;
            args.clone()
        }),
        "blts" => branch(Cond::LtS, &{
            nargs(3)?;
            args.clone()
        }),
        "bges" => branch(Cond::GeS, &{
            nargs(3)?;
            args.clone()
        }),
        "call" => {
            nargs(1)?;
            let name = args[0]
                .strip_prefix('$')
                .ok_or_else(|| err(line, "direct call target must be `$name`"))?;
            let id = syms
                .lookup(name)
                .ok_or_else(|| err(line, format!("unknown kernel function `${name}`")))?;
            Ok(Instr::Call { func: id })
        }
        "calli" => {
            nargs(1)?;
            Ok(Instr::CallI { target: reg(args[0])? })
        }
        "calll" => {
            nargs(1)?;
            Ok(Instr::CallLocal { target: label(args[0])? })
        }
        "ret" => {
            nargs(0)?;
            Ok(Instr::Ret)
        }
        "halt" => {
            nargs(1)?;
            Ok(Instr::Halt { result: reg(args[0])? })
        }
        "clamp" => {
            nargs(1)?;
            Ok(Instr::Clamp { r: reg(args[0])? })
        }
        "checkcall" => {
            nargs(1)?;
            Ok(Instr::CheckCall { r: reg(args[0])? })
        }
        "nop" => {
            nargs(0)?;
            Ok(Instr::Nop)
        }
        other => Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
}

fn alu_op(s: &str) -> AluOp {
    match s {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        "xor" => AluOp::Xor,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        _ => unreachable!("alu_op called with non-ALU mnemonic"),
    }
}

/// Renders a program back to assembly text. Instruction indices are
/// emitted as `L<idx>` labels at branch targets so the output reassembles
/// to the same program (round-trip tested).
pub fn disassemble(prog: &Program, syms: &SymbolTable) -> String {
    use std::collections::BTreeSet;
    let targets: BTreeSet<u32> = prog.instrs.iter().filter_map(|i| i.branch_target()).collect();
    let mut out = String::new();
    for (pc, i) in prog.instrs.iter().enumerate() {
        if targets.contains(&(pc as u32)) {
            out.push_str(&format!("L{pc}:\n"));
        }
        out.push_str("    ");
        out.push_str(&render(i, syms));
        out.push('\n');
    }
    // A trailing label (branch to one-past-the-end is invalid, but a
    // branch to the last instruction is handled above).
    out
}

fn render(i: &Instr, syms: &SymbolTable) -> String {
    let alu_name = |op: AluOp| match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Mul => "mul",
        AluOp::Div => "div",
        AluOp::Rem => "rem",
        AluOp::Xor => "xor",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Shl => "shl",
        AluOp::Shr => "shr",
    };
    let mem = |r: Reg, off: i32| {
        if off >= 0 {
            format!("[{r}+{off}]")
        } else {
            format!("[{r}{off}]")
        }
    };
    match *i {
        Instr::Const { d, imm } => format!("const {d}, {imm}"),
        Instr::Mov { d, s } => format!("mov {d}, {s}"),
        Instr::Alu { op, d, a, b } => format!("{} {d}, {a}, {b}", alu_name(op)),
        Instr::AluI { op, d, a, imm } => format!("{}i {d}, {a}, {imm}", alu_name(op)),
        Instr::LoadW { d, addr, off } => format!("loadw {d}, {}", mem(addr, off)),
        Instr::StoreW { s, addr, off } => format!("storew {s}, {}", mem(addr, off)),
        Instr::LoadB { d, addr, off } => format!("loadb {d}, {}", mem(addr, off)),
        Instr::StoreB { s, addr, off } => format!("storeb {s}, {}", mem(addr, off)),
        Instr::Jmp { target } => format!("jmp L{target}"),
        Instr::Br { cond, a, b, target } => {
            let c = match cond {
                Cond::Eq => "beq",
                Cond::Ne => "bne",
                Cond::LtU => "bltu",
                Cond::GeU => "bgeu",
                Cond::LtS => "blts",
                Cond::GeS => "bges",
            };
            format!("{c} {a}, {b}, L{target}")
        }
        Instr::Call { func } => match syms.name_of(func) {
            Some(n) => format!("call ${n}"),
            None => format!("call $fn_{}", func.0),
        },
        Instr::CallI { target } => format!("calli {target}"),
        Instr::CallLocal { target } => format!("calll L{target}"),
        Instr::Ret => "ret".to_string(),
        Instr::Halt { result } => format!("halt {result}"),
        Instr::Clamp { r } => format!("clamp {r}"),
        Instr::CheckCall { r } => format!("checkcall {r}"),
        Instr::Nop => "nop".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms() -> SymbolTable {
        let mut s = SymbolTable::new();
        s.define("prefetch", HostFnId(3));
        s.define("get_buf", HostFnId(4));
        s
    }

    #[test]
    fn assembles_basic_program() {
        let p = assemble(
            "t",
            "
            ; compute 6*7
            const r1, 6
            const r2, 7
            mul r0, r1, r2
            halt r0
            ",
            &syms(),
        )
        .unwrap();
        assert_eq!(p.instrs.len(), 4);
        assert_eq!(p.instrs[2], Instr::Alu { op: AluOp::Mul, d: Reg(0), a: Reg(1), b: Reg(2) });
    }

    #[test]
    fn labels_and_branches() {
        let p = assemble(
            "t",
            "
            const r1, 0
            loop:
            addi r1, r1, 1
            bltu r1, r2, loop
            jmp done
            done: halt r1
            ",
            &syms(),
        )
        .unwrap();
        assert_eq!(p.instrs[2], Instr::Br { cond: Cond::LtU, a: Reg(1), b: Reg(2), target: 1 });
        assert_eq!(p.instrs[3], Instr::Jmp { target: 4 });
    }

    #[test]
    fn memory_operand_forms() {
        let p = assemble(
            "t",
            "
            loadw r1, [r2+8]
            storew r1, [r2-4]
            loadb r3, [r4]
            halt r0
            ",
            &syms(),
        )
        .unwrap();
        assert_eq!(p.instrs[0], Instr::LoadW { d: Reg(1), addr: Reg(2), off: 8 });
        assert_eq!(p.instrs[1], Instr::StoreW { s: Reg(1), addr: Reg(2), off: -4 });
        assert_eq!(p.instrs[2], Instr::LoadB { d: Reg(3), addr: Reg(4), off: 0 });
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble("t", "const r1, 0x10\nconst r2, -3\nhalt r0", &syms()).unwrap();
        assert_eq!(p.instrs[0], Instr::Const { d: Reg(1), imm: 16 });
        assert_eq!(p.instrs[1], Instr::Const { d: Reg(2), imm: -3 });
    }

    #[test]
    fn direct_call_resolution() {
        let p = assemble("t", "call $prefetch\nhalt r0", &syms()).unwrap();
        assert_eq!(p.instrs[0], Instr::Call { func: HostFnId(3) });
        let e = assemble("t", "call $nosuch\nhalt r0", &syms()).unwrap_err();
        assert!(e.msg.contains("unknown kernel function"));
    }

    #[test]
    fn error_cases_report_lines() {
        let e = assemble("t", "const r1\nhalt r0", &syms()).unwrap_err();
        assert_eq!(e.line, 1);
        let e = assemble("t", "halt r0\nbogus r1", &syms()).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("unknown mnemonic"));
        let e = assemble("t", "jmp nowhere", &syms()).unwrap_err();
        assert!(e.msg.contains("unknown label"));
        let e = assemble("t", "const r99, 1", &syms()).unwrap_err();
        assert!(e.msg.contains("register"));
        let e = assemble("t", "x: nop\nx: nop", &syms()).unwrap_err();
        assert!(e.msg.contains("duplicate label"));
    }

    #[test]
    fn disassemble_round_trips() {
        let src = "
            const r1, 0
            const r2, 10
            loop:
            addi r1, r1, 1
            loadw r3, [r1+0]
            storew r3, [r1+4]
            call $get_buf
            bltu r1, r2, loop
            halt r1
        ";
        let s = syms();
        let p1 = assemble("t", src, &s).unwrap();
        let text = disassemble(&p1, &s);
        let p2 = assemble("t", &text, &s).unwrap();
        assert_eq!(p1.instrs, p2.instrs, "disassembly must reassemble identically\n{text}");
    }

    #[test]
    fn sfi_pseudo_ops_assemble() {
        let p = assemble("t", "clamp r1\ncheckcall r2\ncalli r2\nhalt r0", &syms()).unwrap();
        assert_eq!(p.instrs[0], Instr::Clamp { r: Reg(1) });
        assert_eq!(p.instrs[1], Instr::CheckCall { r: Reg(2) });
        assert!(p.has_indirect_calls());
    }
}

//! The GraftVM interpreter.
//!
//! Executes a [`Program`] against an [`AddressSpace`], charging calibrated
//! cycle costs to the simulation clock for every instruction. Execution
//! is **fuel-bounded**: the kernel gives each invocation a timeslice worth
//! of instructions, and when fuel runs out the interpreter returns
//! [`Exit::Preempted`] with all state preserved, so the scheduler can
//! resume or the transaction manager can abort. This is how Rule 1 of
//! Table 1 ("Grafts must be preemptible") is implemented: a graft with
//! `while (1);` gets exactly its timeslice and no more (§2.2).

use std::rc::Rc;

use vino_sim::costs;
use vino_sim::fault::{FaultPlane, FaultSite};
use vino_sim::metrics::{Component, Counter, MetricsPlane};
use vino_sim::profile::{ProfTag, ProfilePlane};
use vino_sim::trace::{SfiKind, TraceEvent, TracePlane, VmExitKind};
use vino_sim::{Cycles, VirtualClock};

use crate::isa::{AluOp, Cond, HostFnId, Instr, Program};
use crate::mem::{AddressSpace, MemError};

/// Why a graft stopped abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// A memory access faulted (unmapped / SFI violation / straddle).
    Mem(MemError),
    /// A `CheckCall` probe missed: the indirect-call target is not in the
    /// graft-callable table. §3.3: "If the target function is not on the
    /// list, the graft's transaction is aborted."
    ForbiddenCall { id: HostFnId },
    /// An *unchecked* indirect call named an unknown id — the moral
    /// equivalent of un-instrumented code jumping to a wild address.
    WildJump { id: HostFnId },
    /// A direct call named an id the kernel has no binding for (cannot
    /// happen for linker-audited grafts).
    UnknownFunction { id: HostFnId },
    /// Program counter left the instruction stream without `Halt`.
    PcOutOfRange { pc: usize },
    /// Intra-graft call nesting exceeded the configured bound.
    CallDepthExceeded,
    /// `Ret` executed with an empty call stack.
    RetWithoutCall,
    /// Division or remainder by zero.
    DivByZero,
    /// A kernel (host) function failed; the code identifies the error and
    /// is interpreted by the grafting layer (e.g. resource-limit denial).
    HostError { code: u64 },
    /// An injected fault ([`FaultSite::VmTrap`]) fired at this
    /// instruction — the simulated equivalent of a hardware fault or
    /// latent graft bug surfacing mid-execution.
    Injected { pc: usize },
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::Mem(e) => write!(f, "memory fault: {e}"),
            Trap::ForbiddenCall { id } => write!(f, "forbidden indirect call to {id}"),
            Trap::WildJump { id } => write!(f, "wild indirect jump to {id}"),
            Trap::UnknownFunction { id } => write!(f, "unknown function {id}"),
            Trap::PcOutOfRange { pc } => write!(f, "pc out of range: {pc}"),
            Trap::CallDepthExceeded => write!(f, "call depth exceeded"),
            Trap::RetWithoutCall => write!(f, "ret without call"),
            Trap::DivByZero => write!(f, "division by zero"),
            Trap::HostError { code } => write!(f, "host error code {code}"),
            Trap::Injected { pc } => write!(f, "injected fault at pc {pc}"),
        }
    }
}

/// How an interpreter run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exit {
    /// The graft executed `Halt`; payload is the graft's return value.
    Halted(u64),
    /// Fuel exhausted; state is preserved and the run may be resumed.
    Preempted,
    /// The graft trapped; the grafting layer aborts its transaction.
    Trapped(Trap),
}

/// The interface the kernel exposes to executing grafts.
///
/// Implementations wrap the graft-callable function table (§3.3). The
/// interpreter never calls a host function the implementation does not
/// resolve, and the MiSFIT `CheckCall` op consults [`KernelApi::is_callable`].
pub trait KernelApi {
    /// Invokes kernel function `id` with `args` (from `r1..=r4`). The
    /// graft's memory is passed so kernel functions can exchange buffers
    /// with the graft. Returns the value for `r0`.
    fn host_call(
        &mut self,
        id: HostFnId,
        args: [u64; 4],
        mem: &mut AddressSpace,
    ) -> Result<u64, Trap>;

    /// True if `id` is in the graft-callable table. Used by `CheckCall`
    /// and by unchecked indirect calls.
    fn is_callable(&self, id: HostFnId) -> bool;
}

/// A kernel that exposes no functions at all; any call traps.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullKernel;

impl KernelApi for NullKernel {
    fn host_call(
        &mut self,
        id: HostFnId,
        _args: [u64; 4],
        _mem: &mut AddressSpace,
    ) -> Result<u64, Trap> {
        Err(Trap::UnknownFunction { id })
    }

    fn is_callable(&self, _id: HostFnId) -> bool {
        false
    }
}

/// Interpreter configuration.
#[derive(Debug, Clone, Copy)]
pub struct VmConfig {
    /// Maximum intra-graft call nesting before trapping.
    pub max_call_depth: usize,
}

impl Default for VmConfig {
    fn default() -> VmConfig {
        VmConfig { max_call_depth: 64 }
    }
}

/// Counters describing one run; the MiSFIT micro-overhead experiment (E2)
/// and the instrumentation tests read these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Instructions retired.
    pub instrs: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// SFI `Clamp` ops executed.
    pub clamps: u64,
    /// SFI `CheckCall` probes executed.
    pub checkcalls: u64,
    /// Kernel (host) calls performed.
    pub host_calls: u64,
}

/// A graft execution context: registers, pc, local call stack and memory.
#[derive(Debug)]
pub struct Vm {
    /// The register file, `r0..=r15`.
    pub regs: [u64; 16],
    /// Next instruction index.
    pub pc: usize,
    /// Intra-graft return addresses.
    pub call_stack: Vec<usize>,
    /// The graft's address space.
    pub mem: AddressSpace,
    /// Per-run counters.
    pub stats: RunStats,
    cfg: VmConfig,
    fault: Option<Rc<FaultPlane>>,
    trace: Option<Rc<TracePlane>>,
    metrics: Option<Rc<MetricsPlane>>,
    profile: Option<(Rc<ProfilePlane>, ProfTag)>,
}

impl Vm {
    /// Creates a context over `mem` with default configuration.
    pub fn new(mem: AddressSpace) -> Vm {
        Vm::with_config(mem, VmConfig::default())
    }

    /// Creates a context with an explicit configuration.
    pub fn with_config(mem: AddressSpace, cfg: VmConfig) -> Vm {
        Vm {
            regs: [0; 16],
            pc: 0,
            call_stack: Vec::new(),
            mem,
            stats: RunStats::default(),
            cfg,
            fault: None,
            trace: None,
            metrics: None,
            profile: None,
        }
    }

    /// Attaches a fault plane: each interpreted instruction visits
    /// [`FaultSite::VmTrap`], so `plane.arm(VmTrap, n)` traps this VM at
    /// its `n`th instruction (counted across runs and resumes).
    pub fn set_fault_plane(&mut self, plane: Rc<FaultPlane>) {
        self.fault = Some(plane);
    }

    /// Attaches a trace plane: every [`run`](Self::run) window emits a
    /// `vm.window` event (instructions retired + exit kind) and every
    /// MiSFIT sandbox check emits a `vm.sfi` event.
    pub fn set_trace_plane(&mut self, plane: Rc<TracePlane>) {
        self.trace = Some(plane);
    }

    /// Attaches a metrics plane: windows, instructions retired and SFI
    /// checks are counted, and every instruction's cycle charge is
    /// attributed to an overhead component ([`Component::Sfi`] for
    /// sandbox ops, [`Component::GraftFn`] for everything else; host
    /// functions attribute their own interior costs).
    pub fn set_metrics_plane(&mut self, plane: Rc<MetricsPlane>) {
        self.metrics = Some(plane);
    }

    /// Attaches a profile plane under `tag`: every retired instruction
    /// bills its cycle cost to this VM's (graft, function, pc) key, and
    /// `calll`/`ret` drive the call-graph capture.
    pub fn set_profile_plane(&mut self, plane: Rc<ProfilePlane>, tag: ProfTag) {
        self.profile = Some((plane, tag));
    }

    /// Charges `cost` to the clock and attributes it to `comp`.
    ///
    /// Called as the first action of every [`step`](Self::step) arm,
    /// while `self.pc` still holds the post-increment value — so the
    /// retiring instruction is at `self.pc - 1` and the profile plane
    /// can bill per-PC before any control transfer rewrites `pc`.
    fn bill(&self, clock: &Rc<VirtualClock>, comp: Component, cost: Cycles) {
        clock.charge(cost);
        if let Some(mp) = &self.metrics {
            mp.charge(comp, cost);
        }
        if let Some((pp, tag)) = &self.profile {
            pp.record_pc(*tag, self.pc.wrapping_sub(1), comp, cost);
        }
    }

    /// Resets pc/registers/stats for a fresh invocation, keeping memory.
    pub fn reset(&mut self) {
        self.regs = [0; 16];
        self.pc = 0;
        self.call_stack.clear();
        self.stats = RunStats::default();
        if let Some((pp, tag)) = &self.profile {
            pp.reset_stack(*tag);
        }
    }

    /// Runs until halt, trap, or fuel exhaustion.
    ///
    /// `fuel` is decremented once per retired instruction; when it hits
    /// zero the run returns [`Exit::Preempted`] and may be resumed by
    /// calling `run` again with fresh fuel. All cycle costs are charged
    /// to `clock` as they accrue.
    pub fn run(
        &mut self,
        prog: &Program,
        env: &mut dyn KernelApi,
        clock: &Rc<VirtualClock>,
        fuel: &mut u64,
    ) -> Exit {
        let window_start = self.stats.instrs;
        let exit = self.run_window(prog, env, clock, fuel);
        if let Some(mp) = &self.metrics {
            mp.inc(Counter::VmWindows);
            mp.add(Counter::VmInstrs, self.stats.instrs - window_start);
        }
        if let Some(tp) = &self.trace {
            let kind = match &exit {
                Exit::Halted(_) => VmExitKind::Halt,
                Exit::Preempted => VmExitKind::Preempt,
                Exit::Trapped(_) => VmExitKind::Trap,
            };
            tp.emit(TraceEvent::VmWindow { instrs: self.stats.instrs - window_start, exit: kind });
        }
        exit
    }

    fn run_window(
        &mut self,
        prog: &Program,
        env: &mut dyn KernelApi,
        clock: &Rc<VirtualClock>,
        fuel: &mut u64,
    ) -> Exit {
        loop {
            if *fuel == 0 {
                return Exit::Preempted;
            }
            let Some(&instr) = prog.instrs.get(self.pc) else {
                return Exit::Trapped(Trap::PcOutOfRange { pc: self.pc });
            };
            if let Some(plane) = &self.fault {
                if plane.fire(FaultSite::VmTrap) {
                    return Exit::Trapped(Trap::Injected { pc: self.pc });
                }
            }
            *fuel -= 1;
            self.stats.instrs += 1;
            self.pc += 1;
            match self.step(instr, env, clock) {
                Ok(Flow::Continue) => {}
                Ok(Flow::Halt(v)) => return Exit::Halted(v),
                Err(t) => return Exit::Trapped(t),
            }
        }
    }

    fn step(
        &mut self,
        instr: Instr,
        env: &mut dyn KernelApi,
        clock: &Rc<VirtualClock>,
    ) -> Result<Flow, Trap> {
        match instr {
            Instr::Const { d, imm } => {
                self.bill(clock, Component::GraftFn, Cycles(costs::INSTR_CYCLES));
                self.regs[d.idx()] = imm as u64;
            }
            Instr::Mov { d, s } => {
                self.bill(clock, Component::GraftFn, Cycles(costs::INSTR_CYCLES));
                self.regs[d.idx()] = self.regs[s.idx()];
            }
            Instr::Alu { op, d, a, b } => {
                self.bill(clock, Component::GraftFn, Cycles(costs::INSTR_CYCLES));
                let r = alu(op, self.regs[a.idx()], self.regs[b.idx()])?;
                self.regs[d.idx()] = r;
            }
            Instr::AluI { op, d, a, imm } => {
                self.bill(clock, Component::GraftFn, Cycles(costs::INSTR_CYCLES));
                let r = alu(op, self.regs[a.idx()], imm as u64)?;
                self.regs[d.idx()] = r;
            }
            Instr::LoadW { d, addr, off } => {
                self.bill(clock, Component::GraftFn, Cycles(costs::LOAD_CYCLES));
                self.stats.loads += 1;
                let a = self.regs[addr.idx()].wrapping_add(off as i64 as u64);
                self.regs[d.idx()] = self.mem.read(a, 4).map_err(Trap::Mem)?;
            }
            Instr::StoreW { s, addr, off } => {
                self.bill(clock, Component::GraftFn, Cycles(costs::STORE_CYCLES));
                self.stats.stores += 1;
                let a = self.regs[addr.idx()].wrapping_add(off as i64 as u64);
                self.mem.write(a, self.regs[s.idx()], 4).map_err(Trap::Mem)?;
            }
            Instr::LoadB { d, addr, off } => {
                self.bill(clock, Component::GraftFn, Cycles(costs::LOAD_CYCLES));
                self.stats.loads += 1;
                let a = self.regs[addr.idx()].wrapping_add(off as i64 as u64);
                self.regs[d.idx()] = self.mem.read(a, 1).map_err(Trap::Mem)?;
            }
            Instr::StoreB { s, addr, off } => {
                self.bill(clock, Component::GraftFn, Cycles(costs::STORE_CYCLES));
                self.stats.stores += 1;
                let a = self.regs[addr.idx()].wrapping_add(off as i64 as u64);
                self.mem.write(a, self.regs[s.idx()], 1).map_err(Trap::Mem)?;
            }
            Instr::Jmp { target } => {
                self.bill(clock, Component::GraftFn, Cycles(costs::BRANCH_CYCLES));
                self.pc = target as usize;
            }
            Instr::Br { cond, a, b, target } => {
                self.bill(clock, Component::GraftFn, Cycles(costs::BRANCH_CYCLES));
                if eval_cond(cond, self.regs[a.idx()], self.regs[b.idx()]) {
                    self.pc = target as usize;
                }
            }
            Instr::Call { func } => {
                self.bill(clock, Component::GraftFn, Cycles(costs::CALL_CYCLES));
                self.stats.host_calls += 1;
                let args = [self.regs[1], self.regs[2], self.regs[3], self.regs[4]];
                self.regs[0] = env.host_call(func, args, &mut self.mem)?;
            }
            Instr::CallI { target } => {
                self.bill(clock, Component::GraftFn, Cycles(costs::CALL_CYCLES));
                let id = HostFnId(self.regs[target.idx()] as u32);
                if !env.is_callable(id) {
                    // Un-instrumented code jumping through a wild pointer;
                    // MiSFIT-processed code traps earlier, in CheckCall.
                    return Err(Trap::WildJump { id });
                }
                self.stats.host_calls += 1;
                let args = [self.regs[1], self.regs[2], self.regs[3], self.regs[4]];
                self.regs[0] = env.host_call(id, args, &mut self.mem)?;
            }
            Instr::CallLocal { target } => {
                self.bill(clock, Component::GraftFn, Cycles(costs::CALL_CYCLES));
                if self.call_stack.len() >= self.cfg.max_call_depth {
                    return Err(Trap::CallDepthExceeded);
                }
                self.call_stack.push(self.pc);
                self.pc = target as usize;
                if let Some((pp, tag)) = &self.profile {
                    pp.enter_fn(*tag, target);
                }
            }
            Instr::Ret => {
                self.bill(clock, Component::GraftFn, Cycles(costs::RET_CYCLES));
                self.pc = self.call_stack.pop().ok_or(Trap::RetWithoutCall)?;
                if let Some((pp, tag)) = &self.profile {
                    pp.exit_fn(*tag);
                }
            }
            Instr::Halt { result } => {
                self.bill(clock, Component::GraftFn, Cycles(costs::INSTR_CYCLES));
                return Ok(Flow::Halt(self.regs[result.idx()]));
            }
            Instr::Clamp { r } => {
                self.bill(clock, Component::Sfi, Cycles(costs::SFI_CLAMP_CYCLES));
                self.stats.clamps += 1;
                if let Some(mp) = &self.metrics {
                    mp.inc(Counter::SfiClamps);
                }
                if let Some(tp) = &self.trace {
                    tp.emit(TraceEvent::SfiCheck {
                        kind: SfiKind::Clamp,
                        pc: (self.pc - 1) as u64,
                    });
                }
                self.regs[r.idx()] = self.mem.clamp(self.regs[r.idx()]);
            }
            Instr::CheckCall { r } => {
                self.bill(clock, Component::Sfi, Cycles(costs::SFI_CALLCHECK_CYCLES));
                self.stats.checkcalls += 1;
                if let Some(mp) = &self.metrics {
                    mp.inc(Counter::SfiCallchecks);
                }
                if let Some(tp) = &self.trace {
                    tp.emit(TraceEvent::SfiCheck {
                        kind: SfiKind::CheckCall,
                        pc: (self.pc - 1) as u64,
                    });
                }
                let id = HostFnId(self.regs[r.idx()] as u32);
                if !env.is_callable(id) {
                    return Err(Trap::ForbiddenCall { id });
                }
            }
            Instr::Nop => {
                self.bill(clock, Component::GraftFn, Cycles(costs::INSTR_CYCLES));
            }
        }
        Ok(Flow::Continue)
    }
}

enum Flow {
    Continue,
    Halt(u64),
}

fn alu(op: AluOp, a: u64, b: u64) -> Result<u64, Trap> {
    Ok(match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => a.checked_div(b).ok_or(Trap::DivByZero)?,
        AluOp::Rem => a.checked_rem(b).ok_or(Trap::DivByZero)?,
        AluOp::Xor => a ^ b,
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Shl => a << (b & 63),
        AluOp::Shr => a >> (b & 63),
    })
}

fn eval_cond(c: Cond, a: u64, b: u64) -> bool {
    match c {
        Cond::Eq => a == b,
        Cond::Ne => a != b,
        Cond::LtU => a < b,
        Cond::GeU => a >= b,
        Cond::LtS => (a as i64) < (b as i64),
        Cond::GeS => (a as i64) >= (b as i64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;
    use crate::mem::Protection;

    fn ctx() -> (Vm, Rc<VirtualClock>) {
        let mem = AddressSpace::new(4096, 1024, Protection::Sfi);
        (Vm::new(mem), VirtualClock::new())
    }

    fn run_prog(instrs: Vec<Instr>) -> (Exit, Vm, Rc<VirtualClock>) {
        let (mut vm, clock) = ctx();
        let prog = Program::new("t", instrs);
        let mut fuel = 1_000_000;
        let exit = vm.run(&prog, &mut NullKernel, &clock, &mut fuel);
        (exit, vm, clock)
    }

    #[test]
    fn const_mov_alu_halt() {
        let (exit, _, _) = run_prog(vec![
            Instr::Const { d: Reg(1), imm: 40 },
            Instr::Const { d: Reg(2), imm: 2 },
            Instr::Alu { op: AluOp::Add, d: Reg(0), a: Reg(1), b: Reg(2) },
            Instr::Halt { result: Reg(0) },
        ]);
        assert_eq!(exit, Exit::Halted(42));
    }

    #[test]
    fn alu_immediate_forms() {
        let (exit, _, _) = run_prog(vec![
            Instr::Const { d: Reg(1), imm: 10 },
            Instr::AluI { op: AluOp::Mul, d: Reg(1), a: Reg(1), imm: 5 },
            Instr::AluI { op: AluOp::Sub, d: Reg(0), a: Reg(1), imm: 8 },
            Instr::Halt { result: Reg(0) },
        ]);
        assert_eq!(exit, Exit::Halted(42));
    }

    #[test]
    fn div_by_zero_traps() {
        let (exit, _, _) = run_prog(vec![
            Instr::Const { d: Reg(1), imm: 1 },
            Instr::Const { d: Reg(2), imm: 0 },
            Instr::Alu { op: AluOp::Div, d: Reg(0), a: Reg(1), b: Reg(2) },
        ]);
        assert_eq!(exit, Exit::Trapped(Trap::DivByZero));
    }

    #[test]
    fn loop_with_branch() {
        // Sum 1..=10 using a backward branch.
        let (exit, _, _) = run_prog(vec![
            Instr::Const { d: Reg(1), imm: 0 },  // i
            Instr::Const { d: Reg(2), imm: 0 },  // acc
            Instr::Const { d: Reg(3), imm: 10 }, // bound
            Instr::AluI { op: AluOp::Add, d: Reg(1), a: Reg(1), imm: 1 },
            Instr::Alu { op: AluOp::Add, d: Reg(2), a: Reg(2), b: Reg(1) },
            Instr::Br { cond: Cond::LtU, a: Reg(1), b: Reg(3), target: 3 },
            Instr::Halt { result: Reg(2) },
        ]);
        assert_eq!(exit, Exit::Halted(55));
    }

    #[test]
    fn memory_round_trip_and_stats() {
        let (mut vm, clock) = ctx();
        let base = vm.mem.seg_base() as i64;
        let prog = Program::new(
            "t",
            vec![
                Instr::Const { d: Reg(1), imm: base + 32 },
                Instr::Const { d: Reg(2), imm: 0x1234 },
                Instr::StoreW { s: Reg(2), addr: Reg(1), off: 0 },
                Instr::LoadW { d: Reg(0), addr: Reg(1), off: 0 },
                Instr::Halt { result: Reg(0) },
            ],
        );
        let mut fuel = 100;
        let exit = vm.run(&prog, &mut NullKernel, &clock, &mut fuel);
        assert_eq!(exit, Exit::Halted(0x1234));
        assert_eq!(vm.stats.loads, 1);
        assert_eq!(vm.stats.stores, 1);
        assert_eq!(vm.stats.instrs, 5);
    }

    #[test]
    fn fuel_exhaustion_preempts_and_resumes() {
        // An infinite loop — the §2.2 malicious fragment. It must be
        // preemptible (Rule 1) and resumable.
        let (mut vm, clock) = ctx();
        let prog = Program::new("spin", vec![Instr::Jmp { target: 0 }]);
        let mut fuel = 100;
        assert_eq!(vm.run(&prog, &mut NullKernel, &clock, &mut fuel), Exit::Preempted);
        assert_eq!(fuel, 0);
        let mut fuel = 50;
        assert_eq!(vm.run(&prog, &mut NullKernel, &clock, &mut fuel), Exit::Preempted);
        assert_eq!(vm.stats.instrs, 150);
    }

    #[test]
    fn cycles_charged_per_instruction() {
        let (exit, vm, clock) = run_prog(vec![
            Instr::Const { d: Reg(1), imm: 1 }, // 1 cycle
            Instr::Nop,                         // 1 cycle
            Instr::Halt { result: Reg(1) },     // 1 cycle
        ]);
        assert_eq!(exit, Exit::Halted(1));
        assert_eq!(clock.now().get(), 3 * costs::INSTR_CYCLES);
        assert_eq!(vm.stats.instrs, 3);
    }

    #[test]
    fn sfi_clamp_confines_wild_store() {
        let (mut vm, clock) = ctx();
        let kernel_addr = vm.mem.kernel_base() as i64;
        let prog = Program::new(
            "wild",
            vec![
                Instr::Const { d: Reg(1), imm: kernel_addr },
                Instr::Const { d: Reg(2), imm: 0x41 },
                Instr::Clamp { r: Reg(1) },
                Instr::StoreW { s: Reg(2), addr: Reg(1), off: 0 },
                Instr::Halt { result: Reg(0) },
            ],
        );
        let mut fuel = 100;
        let exit = vm.run(&prog, &mut NullKernel, &clock, &mut fuel);
        assert_eq!(exit, Exit::Halted(0));
        assert_eq!(vm.mem.kernel_write_count(), 0, "clamped store must stay in segment");
        assert_eq!(vm.stats.clamps, 1);
    }

    #[test]
    fn unchecked_wild_store_faults_under_sfi_space() {
        let (mut vm, clock) = ctx();
        let kernel_addr = vm.mem.kernel_base() as i64;
        let prog = Program::new(
            "wild",
            vec![
                Instr::Const { d: Reg(1), imm: kernel_addr },
                Instr::StoreW { s: Reg(1), addr: Reg(1), off: 0 },
            ],
        );
        let mut fuel = 100;
        let exit = vm.run(&prog, &mut NullKernel, &clock, &mut fuel);
        assert!(matches!(exit, Exit::Trapped(Trap::Mem(MemError::KernelRegion { .. }))));
    }

    #[test]
    fn checkcall_traps_forbidden_target() {
        let (mut vm, clock) = ctx();
        let prog = Program::new(
            "evil",
            vec![
                Instr::Const { d: Reg(5), imm: 1234 },
                Instr::CheckCall { r: Reg(5) },
                Instr::CallI { target: Reg(5) },
            ],
        );
        let mut fuel = 100;
        let exit = vm.run(&prog, &mut NullKernel, &clock, &mut fuel);
        assert_eq!(exit, Exit::Trapped(Trap::ForbiddenCall { id: HostFnId(1234) }));
        assert_eq!(vm.stats.checkcalls, 1);
        assert_eq!(vm.stats.host_calls, 0);
    }

    #[test]
    fn unchecked_indirect_call_is_wild_jump() {
        let (exit, _, _) =
            run_prog(vec![Instr::Const { d: Reg(5), imm: 77 }, Instr::CallI { target: Reg(5) }]);
        assert_eq!(exit, Exit::Trapped(Trap::WildJump { id: HostFnId(77) }));
    }

    #[test]
    fn host_call_convention() {
        /// Test kernel exposing one function: fn#7 returns a1+a2+a3+a4.
        struct Adder;
        impl KernelApi for Adder {
            fn host_call(
                &mut self,
                id: HostFnId,
                args: [u64; 4],
                _mem: &mut AddressSpace,
            ) -> Result<u64, Trap> {
                if id == HostFnId(7) {
                    Ok(args.iter().sum())
                } else {
                    Err(Trap::UnknownFunction { id })
                }
            }
            fn is_callable(&self, id: HostFnId) -> bool {
                id == HostFnId(7)
            }
        }
        let (mut vm, clock) = ctx();
        let prog = Program::new(
            "t",
            vec![
                Instr::Const { d: Reg(1), imm: 1 },
                Instr::Const { d: Reg(2), imm: 2 },
                Instr::Const { d: Reg(3), imm: 3 },
                Instr::Const { d: Reg(4), imm: 4 },
                Instr::Call { func: HostFnId(7) },
                Instr::Halt { result: Reg(0) },
            ],
        );
        let mut fuel = 100;
        assert_eq!(vm.run(&prog, &mut Adder, &clock, &mut fuel), Exit::Halted(10));
        assert_eq!(vm.stats.host_calls, 1);
    }

    #[test]
    fn local_call_and_ret() {
        let (exit, _, _) = run_prog(vec![
            Instr::CallLocal { target: 3 },
            Instr::AluI { op: AluOp::Add, d: Reg(0), a: Reg(0), imm: 1 },
            Instr::Halt { result: Reg(0) },
            // Subroutine: r0 = 41.
            Instr::Const { d: Reg(0), imm: 41 },
            Instr::Ret,
        ]);
        assert_eq!(exit, Exit::Halted(42));
    }

    #[test]
    fn call_depth_bounded() {
        // Recursion without a base case must trap, not overflow.
        let (exit, _, _) = run_prog(vec![Instr::CallLocal { target: 0 }]);
        assert_eq!(exit, Exit::Trapped(Trap::CallDepthExceeded));
    }

    #[test]
    fn ret_without_call_traps() {
        let (exit, _, _) = run_prog(vec![Instr::Ret]);
        assert_eq!(exit, Exit::Trapped(Trap::RetWithoutCall));
    }

    #[test]
    fn falling_off_the_end_traps() {
        let (exit, _, _) = run_prog(vec![Instr::Nop]);
        assert_eq!(exit, Exit::Trapped(Trap::PcOutOfRange { pc: 1 }));
    }

    #[test]
    fn reset_preserves_memory() {
        let (mut vm, clock) = ctx();
        let base = vm.mem.seg_base() as i64;
        let prog = Program::new(
            "t",
            vec![
                Instr::Const { d: Reg(1), imm: base },
                Instr::Const { d: Reg(2), imm: 99 },
                Instr::StoreW { s: Reg(2), addr: Reg(1), off: 0 },
                Instr::Halt { result: Reg(2) },
            ],
        );
        let mut fuel = 100;
        vm.run(&prog, &mut NullKernel, &clock, &mut fuel);
        vm.reset();
        assert_eq!(vm.pc, 0);
        assert_eq!(vm.regs, [0; 16]);
        assert_eq!(vm.mem.graft_read_u32(0), Some(99), "memory survives reset");
    }

    #[test]
    fn injected_trap_fires_at_nth_instruction() {
        use vino_sim::fault::{FaultPlane, FaultSite};
        let (mut vm, clock) = ctx();
        let plane = FaultPlane::seeded(0);
        plane.arm(FaultSite::VmTrap, 3);
        vm.set_fault_plane(plane);
        let prog = Program::new("spin", vec![Instr::Jmp { target: 0 }]);
        let mut fuel = 100;
        let exit = vm.run(&prog, &mut NullKernel, &clock, &mut fuel);
        assert_eq!(exit, Exit::Trapped(Trap::Injected { pc: 0 }));
        assert_eq!(vm.stats.instrs, 2, "the third instruction never retires");
        assert_eq!(fuel, 98, "the trapped instruction consumes no fuel");
    }

    #[test]
    fn injected_trap_counts_across_resumes() {
        use vino_sim::fault::{FaultPlane, FaultSite};
        let (mut vm, clock) = ctx();
        let plane = FaultPlane::seeded(0);
        plane.arm(FaultSite::VmTrap, 5);
        vm.set_fault_plane(plane);
        let prog = Program::new("spin", vec![Instr::Jmp { target: 0 }]);
        let mut fuel = 3;
        assert_eq!(vm.run(&prog, &mut NullKernel, &clock, &mut fuel), Exit::Preempted);
        let mut fuel = 100;
        let exit = vm.run(&prog, &mut NullKernel, &clock, &mut fuel);
        assert_eq!(exit, Exit::Trapped(Trap::Injected { pc: 0 }));
        assert_eq!(vm.stats.instrs, 4, "trap lands on the fifth visit overall");
    }

    #[test]
    fn trace_plane_sees_windows_and_sfi_checks() {
        use vino_sim::trace::{SfiKind, TraceEvent, TracePlane, VmExitKind};
        let (mut vm, clock) = ctx();
        let plane = TracePlane::new(Rc::clone(&clock));
        vm.set_trace_plane(Rc::clone(&plane));
        let prog = Program::new(
            "t",
            vec![
                Instr::Const { d: Reg(1), imm: 64 },
                Instr::Clamp { r: Reg(1) },
                Instr::Halt { result: Reg(1) },
            ],
        );
        let mut fuel = 2;
        assert_eq!(vm.run(&prog, &mut NullKernel, &clock, &mut fuel), Exit::Preempted);
        let mut fuel = 100;
        assert!(matches!(vm.run(&prog, &mut NullKernel, &clock, &mut fuel), Exit::Halted(_)));
        let evs: Vec<TraceEvent> = plane.records().iter().map(|r| r.event).collect();
        assert_eq!(
            evs,
            vec![
                TraceEvent::SfiCheck { kind: SfiKind::Clamp, pc: 1 },
                TraceEvent::VmWindow { instrs: 2, exit: VmExitKind::Preempt },
                TraceEvent::VmWindow { instrs: 1, exit: VmExitKind::Halt },
            ]
        );
    }

    #[test]
    fn shift_amounts_masked() {
        let (exit, _, _) = run_prog(vec![
            Instr::Const { d: Reg(1), imm: 1 },
            Instr::AluI { op: AluOp::Shl, d: Reg(0), a: Reg(1), imm: 65 }, // 65 & 63 == 1
            Instr::Halt { result: Reg(0) },
        ]);
        assert_eq!(exit, Exit::Halted(2));
    }

    #[test]
    fn signed_vs_unsigned_branches() {
        // -1 is huge unsigned but less than 0 signed.
        let (exit, _, _) = run_prog(vec![
            Instr::Const { d: Reg(1), imm: -1 },
            Instr::Const { d: Reg(2), imm: 0 },
            Instr::Br { cond: Cond::LtS, a: Reg(1), b: Reg(2), target: 4 },
            Instr::Halt { result: Reg(2) }, // not taken => 0
            Instr::Br { cond: Cond::LtU, a: Reg(1), b: Reg(2), target: 6 },
            Instr::Halt { result: Reg(1) }, // LtU not taken => -1
            Instr::Halt { result: Reg(2) },
        ]);
        assert_eq!(exit, Exit::Halted(u64::MAX));
    }
}

//! Kernel threads and the scheduler, with the `schedule-delegate` hook.
//!
//! §4.3: "Each user-level process has associated with it a kernel-level
//! thread. When the kernel thread is chosen to be run next, its
//! schedule-delegate function is run. The default version of this
//! function returns the identity of the thread itself. The
//! schedule-delegate function can be replaced by grafting a
//! process-specific function" — e.g. a blocked database client donating
//! its timeslice to the server, or a UI thread handing off to the video
//! thread.
//!
//! The scheduler is round-robin with a 10 ms timeslice. Every switch
//! charges the calibrated context-switch cost (27 µs, half the paper's
//! 54 µs double-switch base path). Delegate results are *verified*: the
//! returned id is probed in a hash table of valid, runnable threads
//! (charging the probe cost), and an invalid result falls back to the
//! scheduler's own choice — misbehaviour cannot wedge scheduling
//! (Rule 9).

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::rc::Rc;

use vino_sim::costs;
use vino_sim::{Cycles, ThreadId, VirtualClock};

/// Thread lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Runnable, waiting in the run queue.
    Ready,
    /// Currently executing.
    Running,
    /// Blocked (lock wait, I/O, event wait).
    Blocked,
    /// Terminated.
    Exited,
}

/// A kernel thread record.
#[derive(Debug, Clone)]
pub struct Thread {
    /// The thread's id.
    pub id: ThreadId,
    /// Debugging name.
    pub name: String,
    /// Current state.
    pub state: ThreadState,
    /// Timeslices this thread has received (fairness accounting).
    pub slices: u64,
}

/// A read-only view handed to schedule-delegate functions: the candidate
/// the kernel chose plus the runnable-process list the delegate may scan
/// (the Table 5 graft walks a 64-entry list).
#[derive(Debug)]
pub struct SchedSnapshot<'a> {
    /// The thread the default policy selected.
    pub chosen: ThreadId,
    /// All currently runnable threads, in queue order.
    pub runnable: &'a [ThreadId],
}

/// The schedule-delegate hook. The grafting layer implements this by
/// running the grafted GraftVM function; tests implement it directly.
pub trait ScheduleDelegate {
    /// Given the default choice and the runnable list, return the thread
    /// that should actually run. The scheduler verifies the result.
    fn delegate(&mut self, snapshot: &SchedSnapshot<'_>) -> ThreadId;
}

impl<F: FnMut(&SchedSnapshot<'_>) -> ThreadId> ScheduleDelegate for F {
    fn delegate(&mut self, snapshot: &SchedSnapshot<'_>) -> ThreadId {
        self(snapshot)
    }
}

/// How a scheduling decision was reached (for tests and stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PickOutcome {
    /// Default policy choice, no delegate installed.
    Default,
    /// A delegate redirected the timeslice to another valid thread.
    Delegated {
        /// The thread the delegate redirected to.
        to: ThreadId,
    },
    /// A delegate returned an invalid id; the default choice stood.
    DelegateRejected,
    /// The delegate returned the default choice.
    DelegateAgreed,
}

/// Scheduler counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Context switches performed.
    pub switches: u64,
    /// Delegate invocations.
    pub delegate_calls: u64,
    /// Delegate results rejected by verification.
    pub delegate_rejections: u64,
}

/// The round-robin scheduler.
pub struct Scheduler {
    clock: Rc<VirtualClock>,
    threads: HashMap<ThreadId, Thread>,
    /// Hash table of valid thread ids — the verification probe target.
    valid: HashSet<ThreadId>,
    runq: VecDeque<ThreadId>,
    current: Option<ThreadId>,
    delegates: HashMap<ThreadId, Box<dyn ScheduleDelegate>>,
    next_id: u64,
    stats: SchedStats,
}

impl Scheduler {
    /// Creates an empty scheduler charging costs to `clock`.
    pub fn new(clock: Rc<VirtualClock>) -> Scheduler {
        Scheduler {
            clock,
            threads: HashMap::new(),
            valid: HashSet::new(),
            runq: VecDeque::new(),
            current: None,
            delegates: HashMap::new(),
            next_id: 1,
            stats: SchedStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Spawns a ready thread.
    pub fn spawn(&mut self, name: impl Into<String>) -> ThreadId {
        let id = ThreadId(self.next_id);
        self.next_id += 1;
        self.threads
            .insert(id, Thread { id, name: name.into(), state: ThreadState::Ready, slices: 0 });
        self.valid.insert(id);
        self.runq.push_back(id);
        id
    }

    /// The currently running thread.
    pub fn current(&self) -> Option<ThreadId> {
        self.current
    }

    /// Looks up a thread record.
    pub fn thread(&self, id: ThreadId) -> Option<&Thread> {
        self.threads.get(&id)
    }

    /// Number of runnable threads.
    pub fn runnable_count(&self) -> usize {
        self.runq.len()
    }

    /// The runnable list in queue order (the delegate's process list).
    pub fn runnable(&self) -> Vec<ThreadId> {
        self.runq.iter().copied().collect()
    }

    /// Installs a schedule-delegate for `thread` (the §4.3 graft point).
    /// Returns false if the thread does not exist.
    pub fn set_delegate(&mut self, thread: ThreadId, d: Box<dyn ScheduleDelegate>) -> bool {
        if !self.valid.contains(&thread) {
            return false;
        }
        self.delegates.insert(thread, d);
        true
    }

    /// Removes `thread`'s delegate (e.g. on graft unload).
    pub fn clear_delegate(&mut self, thread: ThreadId) {
        self.delegates.remove(&thread);
    }

    /// Marks the current thread blocked and removes it from scheduling
    /// until [`Scheduler::wake`].
    pub fn block_current(&mut self) {
        if let Some(id) = self.current.take() {
            if let Some(t) = self.threads.get_mut(&id) {
                t.state = ThreadState::Blocked;
            }
        }
    }

    /// Wakes a blocked thread.
    pub fn wake(&mut self, id: ThreadId) {
        if let Some(t) = self.threads.get_mut(&id) {
            if t.state == ThreadState::Blocked {
                t.state = ThreadState::Ready;
                self.runq.push_back(id);
            }
        }
    }

    /// Terminates a thread, removing it from all structures.
    pub fn exit(&mut self, id: ThreadId) {
        if let Some(t) = self.threads.get_mut(&id) {
            t.state = ThreadState::Exited;
        }
        self.valid.remove(&id);
        self.runq.retain(|t| *t != id);
        self.delegates.remove(&id);
        if self.current == Some(id) {
            self.current = None;
        }
    }

    /// Performs one scheduling decision and context switch: selects the
    /// next thread round-robin, consults its schedule-delegate (if any),
    /// verifies the result, and switches to the winner.
    ///
    /// Returns the thread now running and how the decision was made, or
    /// `None` when the run queue is empty.
    pub fn pick_and_switch(&mut self) -> Option<(ThreadId, PickOutcome)> {
        // Re-queue the incumbent (unless it still holds a queue slot —
        // a delegation recipient keeps its own pending turn).
        if let Some(prev) = self.current.take() {
            if let Some(t) = self.threads.get_mut(&prev) {
                if t.state == ThreadState::Running {
                    t.state = ThreadState::Ready;
                    if !self.runq.contains(&prev) {
                        self.runq.push_back(prev);
                    }
                }
            }
        }
        let chosen = self.runq.pop_front()?;
        let (winner, outcome) = self.consult_delegate(chosen);
        if winner != chosen {
            // The delegate donated the slice: the donor's *turn* is
            // consumed (it goes to the back like any thread that just
            // ran), while the recipient keeps its own pending turn and
            // simply gets this extra slice — the lottery-style
            // "ticket delegation" semantics of §3.2/§4.3.
            self.runq.push_back(chosen);
        }
        self.switch_to(winner);
        Some((winner, outcome))
    }

    fn consult_delegate(&mut self, chosen: ThreadId) -> (ThreadId, PickOutcome) {
        if !self.delegates.contains_key(&chosen) {
            return (chosen, PickOutcome::Default);
        }
        // Indirection to the (graftable) delegate function.
        self.clock.charge(Cycles(costs::INDIRECTION_CYCLES));
        let runnable: Vec<ThreadId> =
            std::iter::once(chosen).chain(self.runq.iter().copied()).collect();
        let snapshot = SchedSnapshot { chosen, runnable: &runnable };
        let mut d = self.delegates.remove(&chosen).expect("checked above");
        let proposed = d.delegate(&snapshot);
        self.delegates.insert(chosen, d);
        self.stats.delegate_calls += 1;
        // Verify: probe the valid-thread hash table (§4.3).
        self.clock.charge(Cycles(costs::HASH_PROBE_CYCLES));
        let valid = self.valid.contains(&proposed)
            && self
                .threads
                .get(&proposed)
                .is_some_and(|t| matches!(t.state, ThreadState::Ready | ThreadState::Running));
        if !valid {
            self.stats.delegate_rejections += 1;
            (chosen, PickOutcome::DelegateRejected)
        } else if proposed == chosen {
            (chosen, PickOutcome::DelegateAgreed)
        } else {
            (proposed, PickOutcome::Delegated { to: proposed })
        }
    }

    fn switch_to(&mut self, id: ThreadId) {
        self.clock.charge(costs::CONTEXT_SWITCH);
        self.stats.switches += 1;
        if let Some(t) = self.threads.get_mut(&id) {
            t.state = ThreadState::Running;
            t.slices += 1;
        }
        self.current = Some(id);
    }

    /// The instruction budget corresponding to one timeslice, used as
    /// interpreter fuel so grafts are preempted on timeslice boundaries
    /// (Rule 1). Approximated as one instruction per cycle.
    pub fn timeslice_fuel() -> u64 {
        costs::TIMESLICE.get() / costs::INSTR_CYCLES
    }
}

impl fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheduler")
            .field("threads", &self.threads.len())
            .field("runnable", &self.runq.len())
            .field("current", &self.current)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> (Scheduler, Rc<VirtualClock>) {
        let clock = VirtualClock::new();
        (Scheduler::new(Rc::clone(&clock)), clock)
    }

    #[test]
    fn round_robin_rotation() {
        let (mut s, _) = sched();
        let a = s.spawn("a");
        let b = s.spawn("b");
        let c = s.spawn("c");
        let order: Vec<ThreadId> = (0..6).map(|_| s.pick_and_switch().unwrap().0).collect();
        assert_eq!(order, vec![a, b, c, a, b, c]);
    }

    #[test]
    fn switch_charges_context_switch_cost() {
        let (mut s, clock) = sched();
        s.spawn("a");
        let t0 = clock.now();
        s.pick_and_switch().unwrap();
        assert_eq!(clock.since(t0), costs::CONTEXT_SWITCH);
        // The paper's Table 5 base path: two switches = 54us.
        let t1 = clock.now();
        s.pick_and_switch().unwrap();
        s.pick_and_switch().unwrap();
        assert!((clock.since(t1).as_us() - 54.0).abs() < 1e-9);
    }

    #[test]
    fn empty_queue_returns_none() {
        let (mut s, _) = sched();
        assert!(s.pick_and_switch().is_none());
    }

    #[test]
    fn block_and_wake() {
        let (mut s, _) = sched();
        let a = s.spawn("a");
        let b = s.spawn("b");
        s.pick_and_switch().unwrap(); // a runs
        s.block_current();
        // Only b rotates now.
        assert_eq!(s.pick_and_switch().unwrap().0, b);
        assert_eq!(s.pick_and_switch().unwrap().0, b);
        s.wake(a);
        assert_eq!(s.pick_and_switch().unwrap().0, a);
    }

    #[test]
    fn exit_removes_thread() {
        let (mut s, _) = sched();
        let a = s.spawn("a");
        let b = s.spawn("b");
        s.exit(a);
        assert_eq!(s.pick_and_switch().unwrap().0, b);
        assert_eq!(s.pick_and_switch().unwrap().0, b);
        assert_eq!(s.thread(a).unwrap().state, ThreadState::Exited);
    }

    #[test]
    fn delegate_redirects_timeslice() {
        // The multimedia scenario (§4.3): the UI thread hands its slice
        // to the video thread.
        let (mut s, _) = sched();
        let ui = s.spawn("ui");
        let video = s.spawn("video");
        s.set_delegate(ui, Box::new(move |_: &SchedSnapshot<'_>| video));
        let (winner, outcome) = s.pick_and_switch().unwrap();
        assert_eq!(winner, video);
        assert_eq!(outcome, PickOutcome::Delegated { to: video });
        assert_eq!(s.thread(video).unwrap().slices, 1);
        assert_eq!(s.thread(ui).unwrap().slices, 0);
        // The recipient kept its own pending turn: it runs again on its
        // own slot, then the donor gets its next regular turn.
        let (winner2, _) = s.pick_and_switch().unwrap();
        assert_eq!(winner2, video, "recipient keeps its own turn");
        s.clear_delegate(ui);
        let (winner3, _) = s.pick_and_switch().unwrap();
        assert_eq!(winner3, ui, "donor rotates back like any ran thread");
    }

    #[test]
    fn delegate_agreeing_is_reported() {
        let (mut s, _) = sched();
        let a = s.spawn("a");
        s.set_delegate(a, Box::new(|snap: &SchedSnapshot<'_>| snap.chosen));
        let (winner, outcome) = s.pick_and_switch().unwrap();
        assert_eq!(winner, a);
        assert_eq!(outcome, PickOutcome::DelegateAgreed);
    }

    #[test]
    fn invalid_delegate_result_rejected() {
        // A malicious delegate returning a bogus id must not wedge the
        // scheduler; verification falls back to the default choice.
        let (mut s, _) = sched();
        let a = s.spawn("a");
        s.spawn("b");
        s.set_delegate(a, Box::new(|_: &SchedSnapshot<'_>| ThreadId(9999)));
        let (winner, outcome) = s.pick_and_switch().unwrap();
        assert_eq!(winner, a);
        assert_eq!(outcome, PickOutcome::DelegateRejected);
        assert_eq!(s.stats().delegate_rejections, 1);
    }

    #[test]
    fn delegate_to_blocked_thread_rejected() {
        let (mut s, _) = sched();
        let a = s.spawn("a");
        let b = s.spawn("b");
        // Block b.
        s.pick_and_switch().unwrap(); // a
        s.pick_and_switch().unwrap(); // b
        s.block_current(); // b blocked
        s.set_delegate(a, Box::new(move |_: &SchedSnapshot<'_>| b));
        let (winner, outcome) = s.pick_and_switch().unwrap();
        assert_eq!(winner, a);
        assert_eq!(outcome, PickOutcome::DelegateRejected);
    }

    #[test]
    fn delegate_sees_runnable_list() {
        let (mut s, _) = sched();
        let a = s.spawn("a");
        let b = s.spawn("b");
        let c = s.spawn("c");
        let seen: Rc<std::cell::RefCell<Vec<ThreadId>>> = Rc::default();
        let seen2 = Rc::clone(&seen);
        s.set_delegate(
            a,
            Box::new(move |snap: &SchedSnapshot<'_>| {
                *seen2.borrow_mut() = snap.runnable.to_vec();
                snap.chosen
            }),
        );
        s.pick_and_switch().unwrap();
        assert_eq!(*seen.borrow(), vec![a, b, c]);
    }

    #[test]
    fn delegate_charges_indirection_and_probe() {
        let (mut s, clock) = sched();
        let a = s.spawn("a");
        s.set_delegate(a, Box::new(|snap: &SchedSnapshot<'_>| snap.chosen));
        let t0 = clock.now();
        s.pick_and_switch().unwrap();
        let cost = clock.since(t0);
        let expect =
            Cycles(costs::INDIRECTION_CYCLES + costs::HASH_PROBE_CYCLES) + costs::CONTEXT_SWITCH;
        assert_eq!(cost, expect);
    }

    #[test]
    fn timeslice_fuel_matches_10ms() {
        assert_eq!(Scheduler::timeslice_fuel(), costs::TIMESLICE.get());
    }
}

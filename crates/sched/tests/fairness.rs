//! Scheduler property tests: round-robin fairness, delegation
//! conservation, and robustness of the verification path.

use proptest::prelude::*;

use vino_sched::{SchedSnapshot, Scheduler};
use vino_sim::{ThreadId, VirtualClock};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Without delegates, round-robin gives every thread within one
    /// slice of its fair share.
    #[test]
    fn round_robin_is_fair(threads in 1usize..20, rounds in 1usize..200) {
        let mut s = Scheduler::new(VirtualClock::new());
        let ids: Vec<ThreadId> = (0..threads).map(|i| s.spawn(format!("t{i}"))).collect();
        for _ in 0..rounds {
            s.pick_and_switch().unwrap();
        }
        let share = rounds / threads;
        for id in &ids {
            let got = s.thread(*id).unwrap().slices as usize;
            prop_assert!(
                got == share || got == share + 1,
                "{id}: {got} slices, fair share {share}"
            );
        }
    }

    /// Delegation conserves total slices: redirecting never creates or
    /// destroys scheduling opportunities.
    #[test]
    fn delegation_conserves_slices(threads in 2usize..12, rounds in 1usize..100) {
        let mut s = Scheduler::new(VirtualClock::new());
        let ids: Vec<ThreadId> = (0..threads).map(|i| s.spawn(format!("t{i}"))).collect();
        // Every thread donates to thread 0.
        let target = ids[0];
        for id in &ids[1..] {
            s.set_delegate(*id, Box::new(move |_: &SchedSnapshot<'_>| target));
        }
        for _ in 0..rounds {
            s.pick_and_switch().unwrap();
        }
        let total: u64 = ids.iter().map(|id| s.thread(*id).unwrap().slices).sum();
        prop_assert_eq!(total as usize, rounds, "every round granted exactly one slice");
        // And the target collected every donated slice.
        let target_slices = s.thread(target).unwrap().slices as usize;
        prop_assert!(target_slices >= rounds.saturating_sub(rounds / threads) / 1, "{target_slices}");
    }

    /// A delegate returning garbage ids never wedges scheduling and
    /// never grants a slice to a non-existent thread.
    #[test]
    fn garbage_delegates_never_wedge(threads in 1usize..8, garbage in any::<u64>(), rounds in 1usize..50) {
        let mut s = Scheduler::new(VirtualClock::new());
        let ids: Vec<ThreadId> = (0..threads).map(|i| s.spawn(format!("t{i}"))).collect();
        for id in &ids {
            s.set_delegate(*id, Box::new(move |_: &SchedSnapshot<'_>| ThreadId(garbage)));
        }
        for _ in 0..rounds {
            let (winner, _) = s.pick_and_switch().expect("progress");
            prop_assert!(ids.contains(&winner) , "granted to an unknown thread");
        }
        let total: u64 = ids.iter().map(|id| s.thread(*id).unwrap().slices).sum();
        prop_assert_eq!(total as usize, rounds);
    }

    /// Exiting threads mid-stream never breaks the rotation.
    #[test]
    fn exits_do_not_break_rotation(
        threads in 2usize..10,
        exit_round in 0usize..20,
        rounds in 21usize..60,
    ) {
        let mut s = Scheduler::new(VirtualClock::new());
        let ids: Vec<ThreadId> = (0..threads).map(|i| s.spawn(format!("t{i}"))).collect();
        for round in 0..rounds {
            if round == exit_round {
                s.exit(ids[0]);
            }
            if s.runnable_count() == 0 && s.current().is_none() {
                break;
            }
            if let Some((winner, _)) = s.pick_and_switch() {
                prop_assert_ne!(
                    (round > exit_round, winner),
                    (true, ids[0]),
                    "exited thread must not run again"
                );
            }
        }
    }
}

//! Scheduler randomised tests: round-robin fairness, delegation
//! conservation, and robustness of the verification path. Driven by a
//! seeded deterministic generator (formerly proptest).

use vino_sched::{SchedSnapshot, Scheduler};
use vino_sim::{SplitMix64, ThreadId, VirtualClock};

/// Without delegates, round-robin gives every thread within one slice
/// of its fair share.
#[test]
fn round_robin_is_fair() {
    let mut rng = SplitMix64::new(0xFA_1234);
    for _case in 0..128 {
        let threads = rng.range(1, 19) as usize;
        let rounds = rng.range(1, 199) as usize;
        let mut s = Scheduler::new(VirtualClock::new());
        let ids: Vec<ThreadId> = (0..threads).map(|i| s.spawn(format!("t{i}"))).collect();
        for _ in 0..rounds {
            s.pick_and_switch().unwrap();
        }
        let share = rounds / threads;
        for id in &ids {
            let got = s.thread(*id).unwrap().slices as usize;
            assert!(got == share || got == share + 1, "{id}: {got} slices, fair share {share}");
        }
    }
}

/// Delegation conserves total slices: redirecting never creates or
/// destroys scheduling opportunities.
#[test]
fn delegation_conserves_slices() {
    let mut rng = SplitMix64::new(0xDE_1E64);
    for _case in 0..128 {
        let threads = rng.range(2, 11) as usize;
        let rounds = rng.range(1, 99) as usize;
        let mut s = Scheduler::new(VirtualClock::new());
        let ids: Vec<ThreadId> = (0..threads).map(|i| s.spawn(format!("t{i}"))).collect();
        // Every thread donates to thread 0.
        let target = ids[0];
        for id in &ids[1..] {
            s.set_delegate(*id, Box::new(move |_: &SchedSnapshot<'_>| target));
        }
        for _ in 0..rounds {
            s.pick_and_switch().unwrap();
        }
        let total: u64 = ids.iter().map(|id| s.thread(*id).unwrap().slices).sum();
        assert_eq!(total as usize, rounds, "every round granted exactly one slice");
        // And the target collected every donated slice.
        let target_slices = s.thread(target).unwrap().slices as usize;
        assert!(target_slices >= rounds.saturating_sub(rounds / threads), "{target_slices}");
    }
}

/// A delegate returning garbage ids never wedges scheduling and never
/// grants a slice to a non-existent thread.
#[test]
fn garbage_delegates_never_wedge() {
    let mut rng = SplitMix64::new(0x6A_4BA6);
    for _case in 0..128 {
        let threads = rng.range(1, 7) as usize;
        let garbage = rng.next_u64();
        let rounds = rng.range(1, 49) as usize;
        let mut s = Scheduler::new(VirtualClock::new());
        let ids: Vec<ThreadId> = (0..threads).map(|i| s.spawn(format!("t{i}"))).collect();
        for id in &ids {
            s.set_delegate(*id, Box::new(move |_: &SchedSnapshot<'_>| ThreadId(garbage)));
        }
        for _ in 0..rounds {
            let (winner, _) = s.pick_and_switch().expect("progress");
            assert!(ids.contains(&winner), "granted to an unknown thread");
        }
        let total: u64 = ids.iter().map(|id| s.thread(*id).unwrap().slices).sum();
        assert_eq!(total as usize, rounds);
    }
}

/// Exiting threads mid-stream never breaks the rotation.
#[test]
fn exits_do_not_break_rotation() {
    let mut rng = SplitMix64::new(0xE8_1770);
    for _case in 0..128 {
        let threads = rng.range(2, 9) as usize;
        let exit_round = rng.below(20) as usize;
        let rounds = rng.range(21, 59) as usize;
        let mut s = Scheduler::new(VirtualClock::new());
        let ids: Vec<ThreadId> = (0..threads).map(|i| s.spawn(format!("t{i}"))).collect();
        for round in 0..rounds {
            if round == exit_round {
                s.exit(ids[0]);
            }
            if s.runnable_count() == 0 && s.current().is_none() {
                break;
            }
            if let Some((winner, _)) = s.pick_and_switch() {
                assert!(
                    !(round > exit_round && winner == ids[0]),
                    "exited thread must not run again"
                );
            }
        }
    }
}

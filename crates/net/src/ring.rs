//! Per-port bounded RX rings with watermark admission control.
//!
//! Backpressure is deterministic: a ring that climbs to its high
//! watermark enters a shedding state in which every second arrival is
//! refused, and leaves it once depth falls back to the low watermark.
//! A ring at capacity refuses everything. Both refusals are distinct,
//! observable outcomes ([`Admit::ShedWatermark`] vs
//! [`Admit::DropOverflow`]) so overload diagnosis can tell graceful
//! load-shedding from hard overflow.

use std::collections::VecDeque;

use crate::packet::Packet;

/// Default ring capacity, in packets.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// The admission verdict for one arriving packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Enqueued.
    Admitted,
    /// Refused by watermark shedding (ring above high water).
    ShedWatermark,
    /// Refused at capacity (or by an injected overflow).
    DropOverflow,
}

/// One port's bounded RX ring.
#[derive(Debug)]
pub struct RxRing {
    q: VecDeque<Packet>,
    capacity: usize,
    high: usize,
    low: usize,
    shedding: bool,
    shed_toggle: bool,
    /// Packets admitted over the ring's lifetime.
    pub admitted: u64,
    /// Packets refused by watermark shedding.
    pub shed: u64,
    /// Packets refused at capacity.
    pub overflowed: u64,
}

impl RxRing {
    /// A ring holding at most `capacity` packets, with watermarks at
    /// 3/4 (high) and 1/2 (low) of capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> RxRing {
        RxRing::with_watermarks(capacity, capacity * 3 / 4, capacity / 2)
    }

    /// A ring with explicit watermarks (`low <= high <= capacity`).
    ///
    /// # Panics
    ///
    /// Panics if the ordering is violated or `capacity == 0`.
    pub fn with_watermarks(capacity: usize, high: usize, low: usize) -> RxRing {
        assert!(capacity > 0, "ring capacity must be non-zero");
        assert!(low <= high && high <= capacity, "watermarks must satisfy low <= high <= capacity");
        RxRing {
            q: VecDeque::with_capacity(capacity),
            capacity,
            high,
            low,
            shedding: false,
            shed_toggle: false,
            admitted: 0,
            shed: 0,
            overflowed: 0,
        }
    }

    /// Admission control for one arrival. `forced_overflow` is the
    /// fault plane's injected verdict: treat this arrival as if the
    /// ring were full.
    pub fn admit(&mut self, pkt: Packet, forced_overflow: bool) -> Admit {
        if forced_overflow || self.q.len() >= self.capacity {
            self.overflowed += 1;
            return Admit::DropOverflow;
        }
        // Hysteresis: enter shedding at high water, leave at low.
        if !self.shedding && self.q.len() >= self.high {
            self.shedding = true;
            self.shed_toggle = false;
        } else if self.shedding && self.q.len() <= self.low {
            self.shedding = false;
        }
        if self.shedding {
            self.shed_toggle = !self.shed_toggle;
            if self.shed_toggle {
                self.shed += 1;
                return Admit::ShedWatermark;
            }
        }
        self.q.push_back(pkt);
        self.admitted += 1;
        Admit::Admitted
    }

    /// Removes the oldest queued packet.
    pub fn pop(&mut self) -> Option<Packet> {
        self.q.pop_front()
    }

    /// Queued packets.
    pub fn depth(&self) -> usize {
        self.q.len()
    }

    /// True while the ring is between its watermarks shedding load.
    pub fn is_shedding(&self) -> bool {
        self.shedding
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vino_dev::Port;

    fn pkt() -> Packet {
        Packet::udp(1, 2, Port(9), vec![0; 8])
    }

    #[test]
    fn admits_until_capacity() {
        let mut r = RxRing::with_watermarks(4, 4, 4);
        for _ in 0..4 {
            assert_eq!(r.admit(pkt(), false), Admit::Admitted);
        }
        assert_eq!(r.admit(pkt(), false), Admit::DropOverflow);
        assert_eq!(r.depth(), 4);
        assert_eq!((r.admitted, r.overflowed), (4, 1));
    }

    #[test]
    fn forced_overflow_drops_regardless_of_depth() {
        let mut r = RxRing::new(1024);
        assert_eq!(r.admit(pkt(), true), Admit::DropOverflow);
        assert_eq!(r.depth(), 0);
    }

    #[test]
    fn watermark_shedding_is_every_other_arrival_with_hysteresis() {
        // capacity 8, high 4, low 2.
        let mut r = RxRing::with_watermarks(8, 4, 2);
        for _ in 0..4 {
            assert_eq!(r.admit(pkt(), false), Admit::Admitted);
        }
        assert!(!r.is_shedding());
        // Depth 4 = high water: shedding starts, every second arrival
        // refused starting with this one.
        assert_eq!(r.admit(pkt(), false), Admit::ShedWatermark);
        assert!(r.is_shedding());
        assert_eq!(r.admit(pkt(), false), Admit::Admitted);
        assert_eq!(r.admit(pkt(), false), Admit::ShedWatermark);
        // Drain to the low watermark: shedding stops.
        while r.depth() > 2 {
            r.pop();
        }
        assert_eq!(r.admit(pkt(), false), Admit::Admitted);
        assert!(!r.is_shedding(), "left shedding at low water");
        assert_eq!(r.admit(pkt(), false), Admit::Admitted);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = RxRing::new(0);
    }

    #[test]
    #[should_panic(expected = "low <= high")]
    fn bad_watermarks_rejected() {
        let _ = RxRing::with_watermarks(8, 2, 4);
    }
}

//! vino-net: the deterministic in-kernel packet plane.
//!
//! This crate layers a packet RX path over `vino-dev`'s NIC model and
//! `vino-core`'s graft machinery:
//!
//! - [`packet`] — typed packets and the filter marshalling contract
//!   (header layout at the graft segment base, payload prefix at
//!   `APP_BUF`).
//! - [`ring`] — per-port bounded RX rings with deterministic watermark
//!   backpressure (shed every second arrival above high water, recover
//!   at low water; hard drop at capacity).
//! - [`plane`] — the [`PacketPlane`]: protocol demux into rings, the
//!   graftable `net/packet-filter` point with batched transactional
//!   dispatch, steer handling with a hop budget, and the accept-all
//!   default filter that takes over when a filter graft aborts (§3.6).
//!
//! Everything is single-threaded and deterministic: given the same
//! seed, the same packets produce the same verdicts, traces and
//! metrics, byte for byte. See `docs/NET.md` for the guided tour.

pub mod packet;
pub mod plane;
pub mod ring;

pub use packet::{Packet, Proto, PAYLOAD_CAP, REPL_PORT};
pub use plane::{
    decode_verdict, verdict_code, PacketPlane, PortStats, PumpSummary, Verdict, DEFAULT_BATCH,
    DEFAULT_HOP_BUDGET,
};
pub use ring::{Admit, RxRing, DEFAULT_RING_CAPACITY};

//! Typed packets and the filter-graft marshalling contract.

use vino_dev::Port;
use vino_sim::trace::CauseCtx;

/// Transport protocol of a [`Packet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto {
    /// UDP datagram.
    Udp,
    /// TCP segment.
    Tcp,
    /// Replication frame (`vino-repl` journal shipping). Repl traffic
    /// lands only on [`REPL_PORT`], which filter grafts can neither
    /// steer into nor install on.
    Repl,
}

impl Proto {
    /// The small-integer encoding written into the filter header.
    pub fn code(self) -> u32 {
        match self {
            Proto::Udp => 0,
            Proto::Tcp => 1,
            Proto::Repl => 2,
        }
    }
}

/// The reserved replication port. The packet plane refuses filter
/// installs on it and treats any steer *into* it as a loop cut, so a
/// misbehaved filter graft can never swallow or redirect journal
/// shipping traffic.
pub const REPL_PORT: Port = Port(99);

/// A packet on the RX path.
///
/// `id` and `hops` are plane bookkeeping: the plane stamps a unique `id`
/// at first admission (the no-double-delivery witness) and bumps `hops`
/// on every steer so the hop budget can cut steering cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Destination port (the RX ring it lands on).
    pub port: Port,
    /// Transport protocol.
    pub proto: Proto,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// Unique arrival id, stamped by the plane at first admission.
    pub id: u64,
    /// Steer hops taken so far.
    pub hops: u32,
    /// Causal context propagated in-band with the packet: the span
    /// that caused this packet to exist (e.g. the replication ship
    /// span that framed it). [`CauseCtx::NONE`] for untraced traffic.
    pub ctx: CauseCtx,
}

impl Packet {
    /// A fresh UDP packet (the common test/bench constructor).
    pub fn udp(src: u32, dst: u32, port: Port, payload: Vec<u8>) -> Packet {
        Packet { src, dst, port, proto: Proto::Udp, payload, id: 0, hops: 0, ctx: CauseCtx::NONE }
    }

    /// A fresh TCP packet.
    pub fn tcp(src: u32, dst: u32, port: Port, payload: Vec<u8>) -> Packet {
        Packet { src, dst, port, proto: Proto::Tcp, payload, id: 0, hops: 0, ctx: CauseCtx::NONE }
    }

    /// A fresh replication frame, addressed to [`REPL_PORT`].
    pub fn repl(src: u32, dst: u32, payload: Vec<u8>) -> Packet {
        Packet {
            src,
            dst,
            port: REPL_PORT,
            proto: Proto::Repl,
            payload,
            id: 0,
            hops: 0,
            ctx: CauseCtx::NONE,
        }
    }

    /// The same packet carrying `ctx` in-band (builder style).
    pub fn with_ctx(mut self, ctx: CauseCtx) -> Packet {
        self.ctx = ctx;
        self
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

/// Filter-header layout, in bytes from the graft segment base. The
/// plane writes one header per run of a batched dispatch; the payload
/// prefix lands at [`vino_core::adapters::APP_BUF`], capped at
/// [`PAYLOAD_CAP`] bytes.
pub mod header {
    /// Destination port (u32).
    pub const PORT: usize = 0;
    /// Protocol code (u32; see [`super::Proto::code`]).
    pub const PROTO: usize = 4;
    /// Payload length in bytes (u32, uncapped true length).
    pub const LEN: usize = 8;
    /// Source address (u32).
    pub const SRC: usize = 12;
    /// Destination address (u32).
    pub const DST: usize = 16;
}

/// Longest payload prefix marshalled into the graft segment.
pub const PAYLOAD_CAP: usize = 2048;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let p = Packet::udp(1, 2, Port(53), vec![9; 40]);
        assert_eq!(p.proto, Proto::Udp);
        assert_eq!(p.len(), 40);
        assert!(!p.is_empty());
        assert_eq!((p.id, p.hops), (0, 0));
        let t = Packet::tcp(1, 2, Port(80), vec![]);
        assert_eq!(t.proto.code(), 1);
        assert!(t.is_empty());
    }
}

//! The packet plane: per-port rings, the graftable filter point, batched
//! dispatch and the accept-all fallback.
//!
//! Every packet crosses one graft point: `net/packet-filter`. A filter
//! graft is MiSFIT-processed and runs under the full wrapper — SFI,
//! transaction, resource limits, CPU-slice budget — and returns one
//! [`Verdict`] per packet: accept, drop, or steer to another port.
//! Dispatch is batched: one wrapper transaction covers up to
//! [`PacketPlane::set_batch`] packets, so the begin/commit envelope
//! (66 us of the paper's Table 3) is paid once per batch instead of
//! once per packet. The batch is one atomicity domain — if the filter
//! misbehaves on any packet, the whole batch aborts, the graft is
//! forcibly unloaded (§3.6), and the batch is served by the built-in
//! accept-all default filter instead; reinstalling the filter remains
//! subject to the reliability manager's quarantine.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::rc::Rc;

use vino_core::adapters::{SharedGraft, APP_BUF};
use vino_core::engine::BatchOutcome;
use vino_core::kernel::Kernel;
use vino_core::loader::{InstallError, InstallOpts};
use vino_dev::Port;
use vino_misfit::SignedImage;
use vino_rm::PrincipalId;
use vino_sim::fault::FaultSite;
use vino_sim::metrics::{Component, Counter};
use vino_sim::profile::SpanKind;
use vino_sim::trace::{ShedKind, TraceEvent, VerdictKind};
use vino_sim::{costs, Cycles, ThreadId};

use crate::packet::{header, Packet, PAYLOAD_CAP};
use crate::ring::{Admit, RxRing, DEFAULT_RING_CAPACITY};

/// Default packets per batched filter dispatch.
pub const DEFAULT_BATCH: usize = 32;

/// Default steer-hop budget: a packet steered more than this many times
/// is in a cycle and is cut.
pub const DEFAULT_HOP_BUDGET: u32 = 8;

/// Default steer-cycle tolerance: once this many packets have been
/// loop-cut while a port's filter was the last steerer, the filter is
/// condemned (forcibly unloaded) and the port falls back to the
/// accept-all default. A filter that only ever spins packets around
/// the fabric never traps, so the wrapper cannot kill it — this is the
/// plane-level discipline that does.
pub const DEFAULT_LOOP_CUT_TOLERANCE: u32 = 8;

/// Cost of ring admission control per arrival (0.25 us).
pub const RX_ADMIT_COST: Cycles = Cycles(30);

/// Cost of the built-in accept-all default filter per packet — the
/// un-graftable base path, same order as Table 3's 0.5 us base.
pub const DEFAULT_FILTER_COST: Cycles = Cycles(60);

/// Cost of decoding and validating one filter verdict (the semantic
/// result check of §3.1, charged to the kernel's component ledger).
pub const RESULT_CHECK_COST: Cycles = Cycles(60);

/// Cost of re-enqueuing one steered packet.
pub const STEER_COST: Cycles = Cycles(60);

/// Verdict encoding, low 16 bits of the filter's halt value.
pub mod verdict_code {
    /// Deliver to the port's consumer.
    pub const ACCEPT: u64 = 0;
    /// Discard.
    pub const DROP: u64 = 1;
    /// Re-enqueue on the port named in bits 16..32.
    pub const STEER: u64 = 2;

    /// Builds the halt value steering to `port`.
    pub fn steer_to(port: u16) -> u64 {
        STEER | ((port as u64) << 16)
    }
}

/// A decoded filter verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver to the port's consumer.
    Accept,
    /// Discard.
    Drop,
    /// Re-enqueue on another port's ring.
    Steer(Port),
}

/// Decodes a filter halt value. Unknown codes fail the result check and
/// decode as [`Verdict::Drop`] — a misbehaving filter must not make the
/// kernel deliver garbage.
pub fn decode_verdict(halt: u64) -> Verdict {
    match halt & 0xFFFF {
        verdict_code::ACCEPT => Verdict::Accept,
        verdict_code::STEER => Verdict::Steer(Port(((halt >> 16) & 0xFFFF) as u16)),
        _ => Verdict::Drop,
    }
}

/// Lifetime tallies for one [`PacketPlane::pump`]-visible port.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortStats {
    /// Packets admitted to the ring.
    pub admitted: u64,
    /// Packets refused by watermark shedding.
    pub shed: u64,
    /// Packets refused at capacity (or injected overflow).
    pub overflowed: u64,
    /// Packets delivered to the consumer.
    pub delivered: u64,
    /// Current ring depth.
    pub depth: usize,
    /// Packets loop-cut while this port's filter was the last steerer.
    pub loop_cuts: u64,
    /// True once the accept-all default filter took over after an
    /// abort.
    pub fallback_active: bool,
    /// Filter status: `None` = never installed, `Some(true)` = live,
    /// `Some(false)` = installed but dead.
    pub filter_live: Option<bool>,
}

/// Totals for one [`PacketPlane::pump`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpSummary {
    /// Packets that crossed a live filter graft.
    pub filtered: u64,
    /// Packets served by the accept-all default path.
    pub defaulted: u64,
    /// Accept verdicts (filter or default).
    pub accepted: u64,
    /// Drop verdicts.
    pub dropped: u64,
    /// Steer verdicts.
    pub steered: u64,
    /// Packets cut by the hop budget.
    pub loop_cuts: u64,
    /// Batched filter dispatches run.
    pub batches: u64,
    /// Filter aborts observed (each kills its graft).
    pub filter_aborts: u64,
}

struct PortState {
    ring: RxRing,
    filter: Option<SharedGraft>,
    filter_name: Option<String>,
    fallback_active: bool,
    delivered: VecDeque<Packet>,
    delivered_total: u64,
    loop_cuts: u64,
}

impl PortState {
    fn new(capacity: usize) -> PortState {
        PortState {
            ring: RxRing::new(capacity),
            filter: None,
            filter_name: None,
            fallback_active: false,
            delivered: VecDeque::new(),
            delivered_total: 0,
            loop_cuts: 0,
        }
    }
}

/// The shared packet plane. See the module docs.
pub struct PacketPlane {
    kernel: Rc<Kernel>,
    ports: RefCell<BTreeMap<Port, PortState>>,
    batch: Cell<usize>,
    hop_budget: Cell<u32>,
    loop_cut_tolerance: Cell<u32>,
    next_id: Cell<u64>,
}

impl PacketPlane {
    /// A plane serving `kernel`'s RX path, with the default batch size
    /// and hop budget.
    pub fn new(kernel: Rc<Kernel>) -> Rc<PacketPlane> {
        Rc::new(PacketPlane {
            kernel,
            ports: RefCell::new(BTreeMap::new()),
            batch: Cell::new(DEFAULT_BATCH),
            hop_budget: Cell::new(DEFAULT_HOP_BUDGET),
            loop_cut_tolerance: Cell::new(DEFAULT_LOOP_CUT_TOLERANCE),
            next_id: Cell::new(0),
        })
    }

    /// The kernel this plane serves.
    pub fn kernel(&self) -> &Rc<Kernel> {
        &self.kernel
    }

    /// Sets the packets-per-batch for filter dispatch (min 1).
    pub fn set_batch(&self, n: usize) {
        self.batch.set(n.max(1));
    }

    /// Sets the steer-hop budget.
    pub fn set_hop_budget(&self, n: u32) {
        self.hop_budget.set(n);
    }

    /// Sets the steer-cycle tolerance (loop cuts blamed on a port's
    /// filter before the plane condemns it).
    pub fn set_loop_cut_tolerance(&self, n: u32) {
        self.loop_cut_tolerance.set(n.max(1));
    }

    /// Opens `port` with an RX ring of `capacity` packets. Opening an
    /// already-open port keeps its existing ring.
    pub fn open_port(&self, port: Port, capacity: usize) {
        self.ports.borrow_mut().entry(port).or_insert_with(|| PortState::new(capacity));
    }

    /// Installs a packet-filter graft on `port` through the kernel's
    /// full loader pipeline (MiSFIT verification, quarantine and blame
    /// gates). Replaces any previous filter and clears the fallback
    /// state. The port is opened with the default ring capacity if
    /// needed.
    pub fn install_filter(
        &self,
        port: Port,
        image: &SignedImage,
        installer: PrincipalId,
        thread: ThreadId,
        opts: &InstallOpts,
    ) -> Result<SharedGraft, InstallError> {
        if port == crate::packet::REPL_PORT {
            // The replication port is outside graft reach: no filter may
            // ever sit between the primary's journal stream and the
            // replica's ring.
            return Err(InstallError::Restricted {
                point: format!("net/packet-filter/port-{} (reserved repl port)", port.0),
            });
        }
        self.open_port(port, DEFAULT_RING_CAPACITY);
        let graft = self.kernel.install_packet_filter(port, image, installer, thread, opts)?;
        let mut ports = self.ports.borrow_mut();
        let st = ports.get_mut(&port).expect("opened above");
        st.filter_name = Some(graft.borrow().name.clone());
        st.filter = Some(Rc::clone(&graft));
        st.fallback_active = false;
        Ok(graft)
    }

    /// Admission control for one fresh arrival: stamps a unique packet
    /// id, consults the injected-overflow fault site, and runs the
    /// ring's watermark policy. The port is opened with the default
    /// capacity if needed.
    pub fn rx(&self, mut pkt: Packet) -> Admit {
        let id = self.next_id.get() + 1;
        self.next_id.set(id);
        pkt.id = id;
        pkt.hops = 0;
        self.enqueue(pkt)
    }

    /// Ring admission shared by fresh arrivals and steered re-entries
    /// (which keep their id and hop count).
    fn enqueue(&self, pkt: Packet) -> Admit {
        self.kernel.clock.charge(RX_ADMIT_COST);
        let port = pkt.port;
        let len = pkt.len() as u64;
        let pkt_ctx = pkt.ctx;
        let forced = self.fault_fire(FaultSite::NetRxOverflow);
        let mut ports = self.ports.borrow_mut();
        let st = ports.entry(port).or_insert_with(|| PortState::new(DEFAULT_RING_CAPACITY));
        let outcome = st.ring.admit(pkt, forced);
        drop(ports);
        match outcome {
            Admit::Admitted => {
                // Packet enqueue is an event origin: a packet carrying
                // a causal context in-band gets a local enqueue span
                // chained to it, so a shipped frame's arrival is
                // attributable to the sender's span across the kernel
                // boundary.
                match self.kernel.engine.trace_plane() {
                    Some(tp) if !pkt_ctx.is_none() => {
                        let ctx = tp.mint_span(pkt_ctx.span);
                        tp.emit_with_ctx(TraceEvent::NetRx { port: port.0, len }, ctx);
                    }
                    _ => self.emit(TraceEvent::NetRx { port: port.0, len }),
                }
                self.count(Counter::NetRxPackets);
            }
            Admit::ShedWatermark => {
                self.emit(TraceEvent::NetShed { port: port.0, kind: ShedKind::Watermark });
                self.count(Counter::NetRxSheds);
                self.observe_shed();
            }
            Admit::DropOverflow => {
                self.emit(TraceEvent::NetShed { port: port.0, kind: ShedKind::Overflow });
                self.count(Counter::NetRxOverflows);
                self.observe_shed();
            }
        }
        outcome
    }

    /// Drains every ring through its filter until all rings are empty
    /// (steered packets are processed too; the hop budget bounds
    /// cycles). Returns the pump's totals.
    pub fn pump(&self) -> PumpSummary {
        let mut sum = PumpSummary::default();
        loop {
            let mut progressed = false;
            let open: Vec<Port> = self.ports.borrow().keys().copied().collect();
            for port in open {
                while self.process_batch(port, &mut sum) {
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        sum
    }

    /// Processes up to one batch from `port`'s ring. Returns false when
    /// the ring was empty.
    fn process_batch(&self, port: Port, sum: &mut PumpSummary) -> bool {
        // Pop the batch and snapshot the filter under one borrow, then
        // release the map before touching the graft.
        let (batch, filter) = {
            let mut ports = self.ports.borrow_mut();
            let Some(st) = ports.get_mut(&port) else { return false };
            let n = self.batch.get().min(st.ring.depth());
            if n == 0 {
                return false;
            }
            let batch: Vec<Packet> = (0..n).filter_map(|_| st.ring.pop()).collect();
            let live = st.filter.as_ref().filter(|g| !g.borrow().is_dead()).cloned();
            (batch, live)
        };
        match filter {
            Some(graft) => self.filter_batch(port, graft, batch, sum),
            None => {
                // A filter that died outside our dispatch (or was never
                // installed): the default path. The fallback swap emits
                // once, at the moment the dead filter is first seen.
                self.maybe_swap_to_fallback(port);
                for pkt in batch {
                    self.default_accept(port, pkt, sum);
                }
            }
        }
        true
    }

    /// One batched dispatch through a live filter graft: one
    /// indirection charge, one wrapper transaction, `batch.len()` runs.
    fn filter_batch(
        &self,
        port: Port,
        graft: SharedGraft,
        batch: Vec<Packet>,
        sum: &mut PumpSummary,
    ) {
        let n = batch.len();
        let dispatch_start = self.kernel.clock.now();
        self.kernel.clock.charge(Cycles(costs::INDIRECTION_CYCLES));
        if let Some(mp) = self.kernel.engine.metrics_plane() {
            mp.charge(Component::Indirection, Cycles(costs::INDIRECTION_CYCLES));
        }
        if let Some(pp) = self.kernel.engine.profile_plane() {
            pp.charge(Component::Indirection, Cycles(costs::INDIRECTION_CYCLES));
        }
        self.emit(TraceEvent::NetBatch { port: port.0, n: n as u64 });
        self.count(Counter::NetBatchDispatches);
        sum.batches += 1;
        // The injected filter trap: arm a VM trap on the filter's next
        // interpreted instruction, so the batch aborts mid-run through
        // the ordinary trap → abort → unload machinery.
        if let Some(fp) = self.kernel.engine.fault_plane() {
            if fp.fire(FaultSite::NetFilterTrap) {
                fp.arm(FaultSite::VmTrap, fp.visits(FaultSite::VmTrap) + 1);
            }
        }
        let out = graft.borrow_mut().invoke_batch(n, |i, mem| {
            let p = &batch[i];
            let _ = mem.graft_write_u32(header::PORT, p.port.0 as u32);
            let _ = mem.graft_write_u32(header::PROTO, p.proto.code());
            let _ = mem.graft_write_u32(header::LEN, p.payload.len() as u32);
            let _ = mem.graft_write_u32(header::SRC, p.src);
            let _ = mem.graft_write_u32(header::DST, p.dst);
            let take = p.payload.len().min(PAYLOAD_CAP);
            if take > 0 {
                if let Some(buf) = mem.graft_bytes_mut(APP_BUF, take) {
                    buf.copy_from_slice(&p.payload[..take]);
                }
            }
            [p.port.0 as u64, p.payload.len() as u64, p.src as u64, p.dst as u64]
        });
        match out {
            BatchOutcome::Ok { results } => {
                sum.filtered += n as u64;
                for (pkt, halt) in batch.into_iter().zip(results) {
                    // The §3.1 result check: validate the verdict before
                    // acting on it.
                    self.kernel.clock.charge(RESULT_CHECK_COST);
                    if let Some(mp) = self.kernel.engine.metrics_plane() {
                        mp.charge(Component::ResultCheck, RESULT_CHECK_COST);
                    }
                    if let Some(pp) = self.kernel.engine.profile_plane() {
                        pp.charge(Component::ResultCheck, RESULT_CHECK_COST);
                    }
                    match decode_verdict(halt) {
                        Verdict::Accept => {
                            self.verdict(port, VerdictKind::Accept, Counter::NetAccepts);
                            sum.accepted += 1;
                            self.deliver(port, pkt);
                        }
                        Verdict::Drop => {
                            self.verdict(port, VerdictKind::Drop, Counter::NetDrops);
                            sum.dropped += 1;
                        }
                        Verdict::Steer(to) => {
                            self.verdict(port, VerdictKind::Steer, Counter::NetSteers);
                            sum.steered += 1;
                            self.steer(port, to, pkt, sum);
                        }
                    }
                }
            }
            BatchOutcome::Aborted { .. } | BatchOutcome::Dead => {
                // The batch was one atomicity domain and nothing was
                // delivered; the filter is dead. Swap to the accept-all
                // default and serve the whole batch through it.
                sum.filter_aborts += 1;
                self.maybe_swap_to_fallback(port);
                for pkt in batch {
                    self.default_accept(port, pkt, sum);
                }
            }
        }
        // One span per batched dispatch, covering indirection, the
        // wrapped filter run and verdict processing; the invocation
        // span nests inside it by containment.
        if let Some(pp) = self.kernel.engine.profile_plane() {
            pp.mark_since(SpanKind::NetDispatch, dispatch_start);
        }
    }

    /// The accept-all default filter: the cheap native path every
    /// packet takes when no live filter is installed (§3.6 fallback).
    fn default_accept(&self, port: Port, pkt: Packet, sum: &mut PumpSummary) {
        self.kernel.clock.charge(DEFAULT_FILTER_COST);
        self.verdict(port, VerdictKind::Accept, Counter::NetAccepts);
        sum.defaulted += 1;
        sum.accepted += 1;
        self.deliver(port, pkt);
    }

    /// Re-enqueues a steered packet, enforcing the hop budget and
    /// consulting the injected steer-loop site.
    fn steer(&self, from: Port, to: Port, mut pkt: Packet, sum: &mut PumpSummary) {
        pkt.hops += 1;
        if pkt.hops > self.hop_budget.get() {
            self.emit(TraceEvent::NetLoopCut { port: from.0 });
            self.count(Counter::NetLoopCuts);
            sum.loop_cuts += 1;
            self.note_loop_cut(from);
            return;
        }
        // The injected steering cycle: redirect the packet back at the
        // port it came from, so only the hop budget can end it.
        let to = if self.fault_fire(FaultSite::NetSteerLoop) { from } else { to };
        if to == crate::packet::REPL_PORT {
            // No filter verdict may inject traffic into the reserved
            // replication port; treat the attempt like a cut loop and
            // blame the steering filter.
            self.emit(TraceEvent::NetLoopCut { port: from.0 });
            self.count(Counter::NetLoopCuts);
            sum.loop_cuts += 1;
            self.note_loop_cut(from);
            return;
        }
        self.kernel.clock.charge(STEER_COST);
        self.emit(TraceEvent::NetSteer { from: from.0, to: to.0 });
        self.count(Counter::NetSteerHops);
        pkt.port = to;
        let _ = self.enqueue(pkt);
    }

    /// Books one loop cut against `port`'s filter (the last steerer of
    /// the cut packet) and condemns the filter once the tolerance is
    /// exhausted — the steer-cycle discipline.
    fn note_loop_cut(&self, port: Port) {
        let condemned = {
            let mut ports = self.ports.borrow_mut();
            let Some(st) = ports.get_mut(&port) else { return };
            st.loop_cuts += 1;
            match &st.filter {
                Some(g) if st.loop_cuts >= self.loop_cut_tolerance.get() as u64 => {
                    g.borrow_mut().condemn();
                    true
                }
                _ => false,
            }
        };
        if condemned {
            self.maybe_swap_to_fallback(port);
        }
    }

    /// Emits the fallback swap exactly once per filter death: the dead
    /// filter is dropped and the port serves the accept-all default
    /// from now on. Reinstall goes through [`Self::install_filter`] and
    /// the loader's quarantine gate.
    fn maybe_swap_to_fallback(&self, port: Port) {
        let name = {
            let mut ports = self.ports.borrow_mut();
            let Some(st) = ports.get_mut(&port) else { return };
            if st.filter.is_none() {
                return;
            }
            st.filter = None;
            st.fallback_active = true;
            st.filter_name.clone()
        };
        if let Some(name) = name {
            if let Some(tp) = self.kernel.engine.trace_plane() {
                let tag = tp.tag(&name);
                tp.emit(TraceEvent::FallbackServed { graft: tag });
            }
            if let Some(mp) = self.kernel.engine.metrics_plane() {
                let mtag = mp.tag(&name);
                mp.mark_fallback(mtag);
            }
            if let Some(pp) = self.kernel.engine.profile_plane() {
                pp.mark_fallback();
            }
        }
    }

    fn deliver(&self, port: Port, pkt: Packet) {
        let mut ports = self.ports.borrow_mut();
        let st = ports.get_mut(&port).expect("delivering to an open port");
        st.delivered.push_back(pkt);
        st.delivered_total += 1;
    }

    /// Removes the oldest packet delivered to `port`'s consumer.
    pub fn poll_delivered(&self, port: Port) -> Option<Packet> {
        self.ports.borrow_mut().get_mut(&port).and_then(|st| st.delivered.pop_front())
    }

    /// Removes every packet delivered to `port`'s consumer.
    pub fn drain_delivered(&self, port: Port) -> Vec<Packet> {
        self.ports
            .borrow_mut()
            .get_mut(&port)
            .map(|st| st.delivered.drain(..).collect())
            .unwrap_or_default()
    }

    /// Lifetime tallies for `port`, if open.
    pub fn port_stats(&self, port: Port) -> Option<PortStats> {
        self.ports.borrow().get(&port).map(|st| PortStats {
            admitted: st.ring.admitted,
            shed: st.ring.shed,
            overflowed: st.ring.overflowed,
            delivered: st.delivered_total,
            depth: st.ring.depth(),
            loop_cuts: st.loop_cuts,
            fallback_active: st.fallback_active,
            filter_live: st
                .filter_name
                .as_ref()
                .map(|_| st.filter.as_ref().map(|g| !g.borrow().is_dead()).unwrap_or(false)),
        })
    }

    /// True once `port` fell back to the accept-all default filter.
    pub fn fallback_active(&self, port: Port) -> bool {
        self.ports.borrow().get(&port).map(|st| st.fallback_active).unwrap_or(false)
    }

    /// Open ports, in order.
    pub fn open_ports(&self) -> Vec<Port> {
        self.ports.borrow().keys().copied().collect()
    }

    fn fault_fire(&self, site: FaultSite) -> bool {
        self.kernel.engine.fault_plane().map(|fp| fp.fire(site)).unwrap_or(false)
    }

    fn emit(&self, ev: TraceEvent) {
        if let Some(tp) = self.kernel.engine.trace_plane() {
            tp.emit(ev);
        }
    }

    fn count(&self, c: Counter) {
        if let Some(mp) = self.kernel.engine.metrics_plane() {
            mp.inc(c);
        }
    }

    /// Feeds one shed packet (watermark or overflow) into the watch
    /// plane's RX shed-rate window (the `rx-shed` SLO rule).
    fn observe_shed(&self) {
        if let Some(wp) = self.kernel.engine.watch_plane() {
            wp.observe_shed();
        }
    }

    fn verdict(&self, port: Port, kind: VerdictKind, counter: Counter) {
        self.emit(TraceEvent::NetVerdict { port: port.0, verdict: kind });
        self.count(counter);
    }
}

impl std::fmt::Debug for PacketPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PacketPlane")
            .field("ports", &self.ports.borrow().len())
            .field("batch", &self.batch.get())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vino_rm::{Limits, ResourceKind};
    use vino_sim::fault::FaultPlane;
    use vino_sim::metrics::MetricsPlane;
    use vino_sim::trace::TracePlane;

    fn boot_plane() -> (Rc<PacketPlane>, Rc<MetricsPlane>, PrincipalId, ThreadId) {
        let k = Kernel::boot();
        let tp = TracePlane::with_capacity(Rc::clone(&k.clock), 1 << 14);
        k.attach_trace_plane(tp).unwrap();
        let mp = MetricsPlane::new(Rc::clone(&k.clock));
        k.attach_metrics_plane(Rc::clone(&mp)).unwrap();
        let app = k.create_app(Limits::of(&[
            (ResourceKind::KernelHeap, 1 << 20),
            (ResourceKind::Memory, 1 << 24),
        ]));
        let t = k.spawn_thread("net-test");
        (PacketPlane::new(k), mp, app, t)
    }

    fn install(
        plane: &PacketPlane,
        port: Port,
        app: PrincipalId,
        t: ThreadId,
        name: &str,
        src: &str,
    ) -> SharedGraft {
        let image = plane.kernel().compile_graft(name, src).unwrap();
        plane.install_filter(port, &image, app, t, &InstallOpts::default()).unwrap()
    }

    #[test]
    fn verdict_decoding_and_encoding() {
        assert_eq!(decode_verdict(0), Verdict::Accept);
        assert_eq!(decode_verdict(1), Verdict::Drop);
        assert_eq!(decode_verdict(verdict_code::steer_to(40)), Verdict::Steer(Port(40)));
        // Unknown codes fail the result check conservatively.
        assert_eq!(decode_verdict(7), Verdict::Drop);
        assert_eq!(decode_verdict(u64::MAX), Verdict::Drop);
    }

    #[test]
    fn live_filter_runs_batched_and_filters() {
        let (plane, mp, app, t) = boot_plane();
        // Drop packets with odd source address; r3 = src on entry.
        install(
            &plane,
            Port(10),
            app,
            t,
            "drop-odd-src",
            "
            andi r5, r3, 1
            bne r5, r0, toss
            halt r0          ; accept
        toss:
            const r5, 1
            halt r5          ; drop
            ",
        );
        for src in 0..64u32 {
            assert_eq!(plane.rx(Packet::udp(src, 9, Port(10), vec![0xAB; 16])), Admit::Admitted);
        }
        let sum = plane.pump();
        assert_eq!((sum.filtered, sum.accepted, sum.dropped), (64, 32, 32));
        assert_eq!(sum.batches, 2, "64 packets / batch of 32");
        let got = plane.drain_delivered(Port(10));
        assert_eq!(got.len(), 32);
        assert!(got.iter().all(|p| p.src % 2 == 0), "odd sources dropped");
        let mut ids: Vec<u64> = got.iter().map(|p| p.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 32, "no packet delivered twice");
        assert_eq!(mp.get(Counter::NetRxPackets), 64);
        assert_eq!(mp.get(Counter::NetBatchDispatches), 2);
        assert_eq!(mp.get(Counter::NetAccepts), 32);
        assert_eq!(mp.get(Counter::NetDrops), 32);
        // The whole point of batching: one transaction per batch, not
        // one per packet.
        let txn = plane.kernel().engine.txn.borrow().stats();
        assert_eq!((txn.begins, txn.commits), (2, 2));
    }

    #[test]
    fn aborting_filter_falls_back_and_batch_is_served_once() {
        let (plane, mp, app, t) = boot_plane();
        install(
            &plane,
            Port(10),
            app,
            t,
            "div-zero-filter",
            "
            const r5, 0
            div r0, r1, r5
            halt r0
            ",
        );
        for src in 0..40u32 {
            plane.rx(Packet::udp(src, 9, Port(10), vec![1; 8]));
        }
        let sum = plane.pump();
        // Batch 1 (32 packets) aborts and is served by the default
        // path; the filter is dead so the remaining 8 never cross it.
        assert_eq!(sum.filter_aborts, 1);
        assert_eq!(sum.filtered, 0, "no verdict from the aborted batch counts");
        assert_eq!((sum.defaulted, sum.accepted), (40, 40));
        assert!(plane.fallback_active(Port(10)));
        let st = plane.port_stats(Port(10)).unwrap();
        assert_eq!(st.filter_live, Some(false));
        let got = plane.drain_delivered(Port(10));
        assert_eq!(got.len(), 40, "every packet served exactly once");
        let mut ids: Vec<u64> = got.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 40, "no double delivery across the abort");
        assert_eq!(mp.get(Counter::GraftFallbacks), 1, "one fallback per death");
    }

    #[test]
    fn steering_delivers_to_target_port() {
        let (plane, _mp, app, t) = boot_plane();
        plane.open_port(Port(20), 64);
        let steer = format!("const r5, {}\nhalt r5", verdict_code::steer_to(20));
        install(&plane, Port(10), app, t, "steer-to-20", &steer);
        for src in 0..4u32 {
            plane.rx(Packet::udp(src, 9, Port(10), vec![2; 4]));
        }
        let sum = plane.pump();
        assert_eq!(sum.steered, 4);
        assert!(plane.drain_delivered(Port(10)).is_empty());
        let got = plane.drain_delivered(Port(20));
        assert_eq!(got.len(), 4, "steered packets land on the target port");
        assert!(got.iter().all(|p| p.port == Port(20) && p.hops == 1));
    }

    #[test]
    fn steer_cycle_is_cut_by_the_hop_budget() {
        let (plane, mp, app, t) = boot_plane();
        let steer = format!("const r5, {}\nhalt r5", verdict_code::steer_to(30));
        install(&plane, Port(30), app, t, "self-steer", &steer);
        plane.rx(Packet::udp(1, 9, Port(30), vec![3; 4]));
        plane.rx(Packet::udp(2, 9, Port(30), vec![3; 4]));
        let sum = plane.pump();
        assert_eq!(sum.loop_cuts, 2, "both packets cut, pump terminates");
        assert!(plane.drain_delivered(Port(30)).is_empty());
        // Each packet took hop_budget re-admissions before the cut.
        assert_eq!(mp.get(Counter::NetSteerHops), 2 * DEFAULT_HOP_BUDGET as u64);
        assert_eq!(mp.get(Counter::NetLoopCuts), 2);
    }

    #[test]
    fn persistent_steer_cycle_condemns_the_filter() {
        let (plane, mp, app, t) = boot_plane();
        plane.set_loop_cut_tolerance(2);
        let steer = format!("const r5, {}\nhalt r5", verdict_code::steer_to(30));
        let g = install(&plane, Port(30), app, t, "cycle-filter", &steer);
        for src in 0..3u32 {
            plane.rx(Packet::udp(src, 9, Port(30), vec![3; 4]));
        }
        let sum = plane.pump();
        assert_eq!(sum.loop_cuts, 3);
        assert!(g.borrow().is_dead(), "tolerance exhausted: filter condemned");
        assert!(plane.fallback_active(Port(30)));
        assert_eq!(plane.port_stats(Port(30)).unwrap().filter_live, Some(false));
        assert_eq!(mp.get(Counter::GraftFallbacks), 1);
    }

    #[test]
    fn repl_port_is_outside_filter_reach() {
        use crate::packet::REPL_PORT;
        let (plane, mp, app, t) = boot_plane();
        // No filter graft may install on the reserved replication port.
        let image = plane.kernel().compile_graft("on-repl-port", "halt r0").unwrap();
        let err = plane.install_filter(REPL_PORT, &image, app, t, &InstallOpts::default());
        assert!(
            matches!(err, Err(InstallError::Restricted { .. })),
            "install on the repl port must be refused"
        );
        // A steer verdict aimed at the repl port is cut like a loop,
        // and the repl ring never sees the packet.
        let steer = format!("const r5, {}\nhalt r5", verdict_code::steer_to(REPL_PORT.0));
        install(&plane, Port(10), app, t, "steer-to-repl", &steer);
        plane.rx(Packet::udp(1, 9, Port(10), vec![4; 4]));
        let sum = plane.pump();
        assert_eq!(sum.loop_cuts, 1, "steer into the repl port is refused");
        assert!(plane.drain_delivered(REPL_PORT).is_empty());
        assert_eq!(mp.get(Counter::NetLoopCuts), 1);
        // Repl traffic itself flows through the default-accept path.
        plane.rx(Packet::repl(1, 2, vec![7; 8]));
        plane.pump();
        assert_eq!(plane.drain_delivered(REPL_PORT).len(), 1);
    }

    #[test]
    fn injected_overflow_and_watermark_shedding_are_distinct() {
        let (plane, mp, _app, _t) = boot_plane();
        let fp = FaultPlane::inert();
        plane.kernel().attach_fault_plane(Rc::clone(&fp)).unwrap();
        fp.arm(FaultSite::NetRxOverflow, 1);
        // First arrival: forced overflow regardless of depth.
        assert_eq!(plane.rx(Packet::udp(1, 9, Port(10), vec![0; 4])), Admit::DropOverflow);
        assert_eq!(plane.rx(Packet::udp(2, 9, Port(10), vec![0; 4])), Admit::Admitted);
        // A tiny ring: capacity 8, high water 6, low water 4.
        plane.open_port(Port(11), 8);
        let mut tallies = (0u64, 0u64, 0u64);
        for src in 0..12u32 {
            match plane.rx(Packet::udp(src, 9, Port(11), vec![0; 4])) {
                Admit::Admitted => tallies.0 += 1,
                Admit::ShedWatermark => tallies.1 += 1,
                Admit::DropOverflow => tallies.2 += 1,
            }
        }
        assert!(tallies.1 > 0, "watermark shedding engaged");
        assert!(tallies.2 > 0, "hard overflow at capacity");
        let st = plane.port_stats(Port(11)).unwrap();
        assert_eq!(st.admitted + st.shed + st.overflowed, 12);
        assert_eq!(mp.get(Counter::NetRxOverflows), 1 + st.overflowed, "forced + at-capacity");
        assert_eq!(mp.get(Counter::NetRxSheds), st.shed);
    }
}

//! End-to-end profiling demo: attach a profile plane, drive a graft
//! with real call depth, and print the two renderable artifacts —
//! folded stacks (pipe into `flamegraph.pl` for an SVG) and the Chrome
//! trace JSON (load in `chrome://tracing` or Perfetto for the
//! invocation span tree). See docs/PROFILING.md.
//!
//! Run with: `cargo run --example flamegraph`

use std::rc::Rc;

use vino::core::engine::InvokeOutcome;
use vino::core::kernel::point_names;
use vino::core::{InstallOpts, Kernel};
use vino::rm::{Limits, ResourceKind};
use vino::sim::profile::ProfilePlane;
use vino::txn::locks::LockClass;

/// A graft with call depth: the entry loops over an intra-graft
/// subroutine which itself calls a leaf — three distinct flamegraph
/// frames per invocation, plus the lock/txn envelope around them.
const SRC: &str = "
    const r1, 0          ; shared-buffer lock handle
    call $lock
    call $shared_base
    mov r6, r0
    const r4, 0
    const r9, 6
loop:
    bgeu r4, r9, done
    calll middle
    addi r4, r4, 1
    jmp loop
done:
    const r1, 0
    call $unlock
    halt r5
middle:
    loadw r10, [r6+0]
    add r5, r5, r10
    calll leaf
    ret
leaf:
    addi r5, r5, 1
    storew r5, [r6+4]
    ret
";

fn main() {
    let kernel = Kernel::boot();
    let profile = ProfilePlane::new(Rc::clone(&kernel.clock));
    kernel.attach_profile_plane(Rc::clone(&profile)).expect("first attach");

    let app = kernel.create_app(Limits::of(&[(ResourceKind::KernelHeap, 1 << 20)]));
    let thread = kernel.spawn_thread("app");
    let _ = kernel.engine.register_lock(LockClass::SharedBuffer);

    let image = kernel.compile_graft("ra-policy", SRC).expect("compiles");
    let graft = kernel
        .install_function_graft(
            point_names::COMPUTE_RA,
            &image,
            app,
            thread,
            &InstallOpts::default(),
        )
        .expect("installs");
    for i in 0..25u64 {
        let out = graft.borrow_mut().invoke([i, 0, 0, 0]);
        assert!(matches!(out, InvokeOutcome::Ok { .. }), "{out:?}");
    }

    // Folded stacks: one line per call path, weight = self cycles.
    // `cargo run --example flamegraph | grep ';' | flamegraph.pl > g.svg`
    println!("== folded stacks (flamegraph.pl format) ==");
    print!("{}", profile.folded());

    println!();
    println!("== hot functions ==");
    print!("{}", profile.render_top(10));

    println!();
    println!("== chrome trace (chrome://tracing JSON) ==");
    println!("{}", profile.chrome_trace());
}

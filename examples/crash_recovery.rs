//! Crash and recover: kill a VINO kernel at the worst instants of a
//! file-system write, then boot a fresh kernel over the surviving disk
//! image and watch write-ahead-journal recovery put the volume back
//! into a consistent state.
//!
//! The script walks the four crash points of the journal protocol:
//!
//!   1. before anything reaches the journal   → the write never happened
//!   2. mid-journal (a record torn on disk)   → torn tail discarded
//!   3. after the commit marker               → redo completes the write
//!   4. mid-checkpoint (home blocks half-written) → redo completes it
//!
//! Run with: `cargo run --example crash_recovery`

use std::rc::Rc;

use vino::core::kernel::KernelConfig;
use vino::core::Kernel;
use vino::fs::{FsError, BLOCK_SIZE};
use vino::sim::fault::{FaultPlane, CRASH_SITES};

fn main() {
    for &site in CRASH_SITES {
        println!("=== crash point: {site:?} ===");

        // A kernel with one committed file, and a fault plane that will
        // kill it at the chosen instant of the next journalled write.
        let kernel = Kernel::boot();
        let plane = FaultPlane::seeded(0xD15A57E5);
        kernel.attach_fault_plane(Rc::clone(&plane)).expect("attach");
        {
            let mut fs = kernel.fs.borrow_mut();
            fs.create("ledger", 2 * BLOCK_SIZE as u64).expect("create");
            let fd = fs.open("ledger").expect("open");
            fs.write(fd, 0, b"balance: 100 (committed)").expect("write");
        }

        // Arm the one-shot and run the doomed overwrite. The kernel
        // dies mid-operation: the write returns PowerFailure and every
        // later call on this instance fails the same way.
        plane.arm(site, plane.visits(site) + 1);
        {
            let mut fs = kernel.fs.borrow_mut();
            let fd = fs.open("ledger").expect("open");
            let err = fs.write(fd, 0, b"balance: 250 (in flight)").unwrap_err();
            assert_eq!(err, FsError::PowerFailure);
            println!("  kernel died mid-write: {err}");
        }

        // What the platters hold at this instant is all a real crash
        // leaves behind. Boot a *fresh* kernel over it; mounting scans
        // the journal, rolls committed transactions forward, and
        // discards torn tails — before any subsystem touches the disk.
        let image = kernel.crash_image();
        let fresh =
            Kernel::boot_from_image(KernelConfig::default(), image).expect("remount + recover");
        let report = fresh.recovery_report().expect("recovered boot carries a report");
        println!(
            "  recovery: scanned {} journal blocks, replayed {} txn(s) ({} blocks), discarded {}",
            report.scanned_blocks,
            report.replayed_txns,
            report.replayed_blocks,
            report.discarded_txns,
        );

        // The consistency contract: the interrupted write is
        // all-or-nothing, decided by whether its commit marker made it
        // to disk before the power died.
        let mut fs = fresh.fs.borrow_mut();
        let fd = fs.open("ledger").expect("the file survived");
        let bytes = fs.read(fd, 0, 24).expect("read");
        println!("  ledger now reads: {:?}\n", String::from_utf8_lossy(&bytes));
    }
    println!("every crash point recovered to a consistent volume");
}

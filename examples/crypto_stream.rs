//! The §4.4 stream graft: encryption on the user/kernel data path.
//!
//! "Our graft performs a trivial (xor-style) encryption of data as it
//! is copied to user level, and symmetrical decryption as it is brought
//! into the kernel from user level." This example pushes a buffer
//! through the grafted transform in both directions, verifies the
//! round trip, and reports the measured SFI overhead — the paper's
//! worst case ("imposing more than 100% overhead on the graft
//! function").
//!
//! Run with: `cargo run --release --example crypto_stream`

use vino::core::{InstallOpts, Kernel};
use vino::rm::{Limits, ResourceKind};
use vino::vm::Protection;

const XOR_GRAFT: &str = "
    const r5, 0x5A5A5A5A
    add r3, r1, r3
loop:
    bgeu r1, r3, done
    loadw r7, [r1+0]
    xor r7, r7, r5
    storew r7, [r2+0]
    addi r1, r1, 4
    addi r2, r2, 4
    jmp loop
done:
    halt r0
";

fn main() {
    let kernel = Kernel::boot();
    let app = kernel.create_app(Limits::of(&[(ResourceKind::KernelHeap, 1 << 16)]));
    let thread = kernel.spawn_thread("stream");

    // Safe (instrumented) transform.
    let image = kernel.compile_graft("xor-crypt", XOR_GRAFT).expect("compiles");
    let mut safe = kernel
        .install_stream_graft(&image, app, thread, &InstallOpts::default())
        .expect("installs");

    // Unsafe (raw) transform, for the overhead comparison — what the
    // paper's "unsafe path" measures. Note the loader still demands a
    // valid signature; only the SFI pass is skipped.
    let raw = kernel.compile_graft_unsafe("xor-crypt-raw", XOR_GRAFT).expect("seals");
    let mut unsafe_ = kernel
        .install_stream_graft(
            &raw,
            app,
            thread,
            &InstallOpts { protection: Protection::Unprotected, ..InstallOpts::default() },
        )
        .expect("installs");

    let message: Vec<u8> = (0..8192u32).map(|i| (i * 7 % 256) as u8).collect();

    let t0 = kernel.clock.now();
    let cipher = safe.transform(&message).expect("encrypts");
    let safe_us = kernel.clock.since(t0).as_us();
    assert_ne!(cipher, message);

    let plain = safe.transform(&cipher).expect("decrypts");
    assert_eq!(plain, message, "xor encryption is symmetric");

    let t0 = kernel.clock.now();
    let cipher_raw = unsafe_.transform(&message).expect("encrypts");
    let unsafe_us = kernel.clock.since(t0).as_us();
    assert_eq!(cipher_raw, cipher, "instrumentation must not change results");

    println!("encrypted + decrypted 8 KB through the in-kernel stream graft");
    println!("  safe (MiSFIT) path : {safe_us:.0} us");
    println!("  unsafe (raw) path  : {unsafe_us:.0} us");
    println!(
        "  SFI overhead       : {:.0} us ({:.0}% of the raw graft) — the paper's \
         store-dense worst case",
        safe_us - unsafe_us,
        100.0 * (safe_us - unsafe_us) / unsafe_us
    );
}

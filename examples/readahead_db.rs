//! The §4.1 motivating workload: a database-style application reading a
//! 12 MB file in random order, with advance knowledge of its access
//! pattern. Compares the default (sequential-only) read-ahead policy
//! against an application-installed read-ahead graft that prefetches
//! the next posted block — the paper's "application wins if it spends
//! at least 107 us between read requests" analysis, live.
//!
//! Run with: `cargo run --release --example readahead_db`

use vino::core::{InstallOpts, Kernel};
use vino::rm::{Limits, ResourceKind};
use vino::sim::{Cycles, SplitMix64};

const FILE_BLOCKS: usize = 3072; // 12 MB at 4 KB.
const READS: usize = 300;
const COMPUTE_US: u64 = 137; // "it takes 137 us to sum a 4KB array".

/// The read-ahead graft: the application posts (current, next) in the
/// shared buffer; the graft matches the current offset and submits the
/// next one for prefetch.
const RA_GRAFT: &str = "
    const r1, 0
    call $lock
    call $shared_base
    mov r5, r0
    loadw r8, [r5+0]     ; request offset
    loadw r9, [r5+1028]  ; posted current
    bne r8, r9, out      ; stale hint: do nothing
    loadw r1, [r5+1032]  ; posted next
    const r2, 4096
    call $ra_submit
out:
    halt r0
";

fn run_workload(kernel: &Kernel, grafted: bool) -> f64 {
    kernel.fs.borrow_mut().create("db", (FILE_BLOCKS * 4096) as u64).expect("create");
    let fd = kernel.fs.borrow_mut().open("db").expect("open");
    let app = kernel.create_app(Limits::of(&[(ResourceKind::KernelHeap, 1 << 20)]));
    let thread = kernel.spawn_thread("db");
    let graft = if grafted {
        // The graft locks the shared hint buffer; register that lock.
        kernel.engine.register_lock(vino::txn::LockClass::SharedBuffer);
        let image = kernel.compile_graft("db-ra", RA_GRAFT).expect("compiles");
        Some(
            kernel
                .install_ra_graft(fd, &image, app, thread, &InstallOpts::default())
                .expect("installs"),
        )
    } else {
        None
    };

    let mut rng = SplitMix64::new(2026);
    let seq: Vec<u64> = rng
        .permutation(FILE_BLOCKS)
        .into_iter()
        .take(READS + 1)
        .map(|b| (b * 4096) as u64)
        .collect();

    let t0 = kernel.clock.now();
    for i in 0..READS {
        if let Some(g) = &graft {
            let mut inst = g.borrow_mut();
            let mem = inst.mem();
            mem.graft_write_u32(1028, seq[i] as u32);
            mem.graft_write_u32(1032, seq[i + 1] as u32);
        }
        kernel.fs.borrow_mut().read(fd, seq[i], 4096).expect("read");
        kernel.clock.charge(Cycles::from_us(COMPUTE_US)); // "compute".
    }
    let elapsed = kernel.clock.since(t0);
    let stats = kernel.fs.borrow().stats();
    let cache = kernel.fs.borrow().cache_stats();
    println!(
        "  {}: {:.1} ms total, {:.0} us/read  (prefetches {}, cache hits {}, late hits {}, misses {})",
        if grafted { "grafted read-ahead " } else { "default read-ahead " },
        elapsed.as_ms(),
        elapsed.as_us() / READS as f64,
        stats.prefetches_issued,
        cache.hits,
        cache.late_hits,
        cache.misses,
    );
    elapsed.as_us() / READS as f64
}

fn main() {
    println!(
        "random-access database workload: {READS} reads of 4 KB from a 12 MB file,\n\
         {COMPUTE_US} us of computation between reads (the paper's 4 KB-array-sum figure)\n"
    );
    let plain = {
        let k = Kernel::boot();
        run_workload(&k, false)
    };
    let grafted = {
        let k = Kernel::boot();
        run_workload(&k, true)
    };
    let win = plain - grafted;
    println!(
        "\nnet win per read: {win:.0} us  ({}; paper predicts a win whenever \
         compute > ~107 us of graft overhead)",
        if win > 0.0 { "the graft pays off" } else { "the graft does not pay off" }
    );
    // Make the binary honest: with 137 us of compute the graft must win.
    assert!(win > 0.0, "expected the graft to win at {COMPUTE_US} us compute");
}

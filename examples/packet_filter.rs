//! The `net/packet-filter` graft point: per-port packet filters under
//! full SFI + transaction protection, dispatched in batches.
//!
//! Installs a well-behaved drop-odd-source filter on port 10 and a
//! hostile infinite-loop filter on port 20, then pushes traffic at
//! both. The spinner exhausts its time slices inside its first batch,
//! is aborted and unloaded, and the port falls back to the accept-all
//! default filter — packets keep flowing (Rule 9) and the aborted
//! batch is served exactly once by the default path.
//!
//! Run with: `cargo run --example packet_filter`

use std::rc::Rc;

use vino::core::{InstallOpts, Kernel};
use vino::dev::Port;
use vino::net::{Packet, PacketPlane};
use vino::rm::{Limits, ResourceKind};

fn main() {
    let kernel = Kernel::boot();
    let app = kernel.create_app(Limits::of(&[
        (ResourceKind::KernelHeap, 1 << 20),
        (ResourceKind::Memory, 1 << 24),
    ]));
    let thread = kernel.spawn_thread("pf-demo");
    let plane = PacketPlane::new(Rc::clone(&kernel));

    // A policy filter: drop packets with an odd source address.
    // Args arrive in r1..r4 = port, len, src, dst; halt value is the
    // verdict (0 = accept, 1 = drop, 2|port<<16 = steer).
    let well = kernel
        .compile_graft(
            "drop-odd-src",
            "
            andi r5, r3, 1
            bne r5, r0, toss
            halt r0             ; accept
        toss:
            const r5, 1
            halt r5             ; drop
            ",
        )
        .expect("compiles");
    plane.install_filter(Port(10), &well, app, thread, &InstallOpts::default()).expect("installs");

    // A hostile filter: spins forever. The slice budget catches it.
    let spin = kernel.compile_graft("spin-filter", "spin: jmp spin").expect("compiles");
    let g = plane
        .install_filter(Port(20), &spin, app, thread, &InstallOpts::default())
        .expect("installs");
    g.borrow_mut().max_slices = 4;

    // Traffic: 64 packets to each port.
    for i in 0..64u32 {
        plane.rx(Packet::udp(i, 1, Port(10), vec![0xA5; 16]));
        plane.rx(Packet::udp(i, 2, Port(20), vec![0x5A; 16]));
    }
    let summary = plane.pump();
    println!(
        "pumped: {} filtered, {} served by default, {} accepted, {} dropped, {} filter aborts",
        summary.filtered,
        summary.defaulted,
        summary.accepted,
        summary.dropped,
        summary.filter_aborts
    );

    let p10 = plane.port_stats(Port(10)).unwrap();
    let p20 = plane.port_stats(Port(20)).unwrap();
    println!(
        "port 10 (drop-odd-src): {} delivered of {} admitted, filter live: {:?}",
        p10.delivered, p10.admitted, p10.filter_live
    );
    println!(
        "port 20 (spin-filter):  {} delivered of {} admitted, filter live: {:?}, fallback: {}",
        p20.delivered, p20.admitted, p20.filter_live, p20.fallback_active
    );

    assert_eq!(p10.delivered, 32, "even sources accepted, odd dropped");
    assert_eq!(p20.delivered, 64, "whole batch served once by the default filter");
    assert!(p20.fallback_active, "spinner unloaded, port on accept-all fallback");
    println!("\nthe spinner was aborted and unloaded; its port kept serving on the default path.");
}

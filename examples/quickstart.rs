//! Quickstart: boot a VINO kernel, compile a graft with the MiSFIT
//! pipeline, install it on an open file's `compute-ra` graft point, and
//! watch the read path call it — then watch a buggy version get aborted
//! and forcibly unloaded while the kernel keeps running.
//!
//! Run with: `cargo run --example quickstart`

use vino::core::{InstallOpts, Kernel};
use vino::rm::{Limits, ResourceKind};

fn main() {
    // Boot: clock, transaction manager, scheduler, VM system, file
    // system (formatted on a simulated 1996-era disk), NIC.
    let kernel = Kernel::boot();
    println!("booted; graft namespace:");
    for (name, kind) in kernel.namespace().list() {
        println!("  {name:<28} {kind:?}");
    }

    // An application principal with some resource limits, and a thread.
    let app = kernel.create_app(Limits::of(&[
        (ResourceKind::KernelHeap, 1 << 20),
        (ResourceKind::Memory, 1 << 24),
    ]));
    let thread = kernel.spawn_thread("app");

    // A file to experiment on.
    kernel.fs.borrow_mut().create("data.db", 64 * 4096).expect("create");
    let fd = kernel.fs.borrow_mut().open("data.db").expect("open");

    // Figure 1's flow: write graft source, compile it (assemble +
    // MiSFIT instrumentation + signing), and replace the compute-ra
    // method on the open-file object.
    let image = kernel
        .compile_graft(
            "my-ra",
            "
            ; r1 = read offset, r2 = read length.
            add r1, r1, r2     ; prefetch the block right after the read
            const r2, 4096
            call $ra_submit
            halt r0
            ",
        )
        .expect("compiles");
    kernel.install_ra_graft(fd, &image, app, thread, &InstallOpts::default()).expect("installs");
    println!("\ninstalled read-ahead graft on fd {fd:?}");

    // Reads now consult the graft.
    for block in [0u64, 5, 9] {
        kernel.fs.borrow_mut().read(fd, block * 4096, 4096).expect("read");
    }
    let stats = kernel.fs.borrow().stats();
    println!(
        "after 3 random reads: graft calls = {}, prefetches issued = {}",
        stats.ra_graft_calls, stats.prefetches_issued
    );

    // Now the disaster: a buggy graft that dereferences a wild pointer.
    // MiSFIT confines the store to the graft's own segment, but suppose
    // it also divides by zero: the wrapper aborts its transaction, the
    // undo stack runs, and the graft is forcibly unloaded (§3.6).
    let buggy = kernel
        .compile_graft(
            "buggy-ra",
            "
            const r3, 10
            call $kv_get           ; r1 = slot 10 (fine)
            const r4, 0
            div r0, r3, r4         ; boom
            halt r0
            ",
        )
        .expect("compiles");
    let graft = kernel
        .install_ra_graft(fd, &buggy, app, thread, &InstallOpts::default())
        .expect("installs");
    kernel.fs.borrow_mut().read(fd, 7 * 4096, 4096).expect("read survives the graft");
    println!(
        "\nbuggy graft dead after first invocation: {} (kernel kept serving reads)",
        graft.borrow().is_dead()
    );
    println!("transaction stats: {:?}", kernel.engine.txn.borrow().stats());
    println!("\nsimulated time elapsed: {:.2} ms at 120 MHz", kernel.clock.now().as_ms());
}

//! The §4.3 multimedia scenario: "if the user interface thread is
//! scheduled when it comes time for the application to display the next
//! video frame, the best the UI thread can do is yield, and hope that
//! the video thread is scheduled soon. With the ability to delegate a
//! timeslice [...] the UI thread could hand off directly to the video
//! thread."
//!
//! The UI thread installs a schedule-delegate graft that donates its
//! slice to the video thread whenever a frame deadline is pending
//! (signalled through a kernel-state slot). With many background
//! threads competing, delegation cuts the video thread's scheduling
//! latency dramatically.
//!
//! Run with: `cargo run --example multimedia_sched`

use vino::core::{InstallOpts, Kernel};
use vino::rm::{Limits, ResourceKind};

/// Kernel-state slot the application sets when a frame is due.
const FRAME_DUE_SLOT: u64 = 3;
/// Kernel-state slot holding the video thread's id.
const VIDEO_TID_SLOT: u64 = 4;

fn video_slices(kernel: &Kernel, delegated: bool, rounds: usize) -> u64 {
    let app = kernel.create_app(Limits::of(&[(ResourceKind::KernelHeap, 1 << 16)]));
    let ui = kernel.spawn_thread("ui");
    let video = kernel.spawn_thread("video");
    for i in 0..14 {
        kernel.spawn_thread(&format!("background-{i}"));
    }
    if delegated {
        // The delegate: if a frame is due, hand the slice to the video
        // thread (2nd entry of the runnable snapshot by construction);
        // otherwise keep it.
        let image = kernel
            .compile_graft(
                "ui-handoff",
                &format!(
                    "
                    mov r8, r1          ; my own id (the default choice)
                    const r1, {FRAME_DUE_SLOT}
                    call $kv_get
                    const r4, 0
                    beq r0, r4, keep    ; no frame due: run myself
                    const r1, {VIDEO_TID_SLOT}
                    call $kv_get        ; hand off to the video thread
                    halt r0
                    keep:
                    mov r0, r8
                    halt r0
                    "
                ),
            )
            .expect("compiles");
        kernel.install_sched_graft(ui, &image, app, &InstallOpts::default()).expect("installs");
    }
    // A frame is always due in this demo, and the app registers the
    // video thread's identity for the delegate.
    kernel.engine.kv_write(FRAME_DUE_SLOT as usize, 1);
    kernel.engine.kv_write(VIDEO_TID_SLOT as usize, video.0);
    for _ in 0..rounds {
        kernel.sched.borrow_mut().pick_and_switch();
    }
    kernel.sched.borrow().thread(video).expect("exists").slices
}

fn main() {
    const ROUNDS: usize = 160;
    let plain = {
        let k = Kernel::boot();
        video_slices(&k, false, ROUNDS)
    };
    let delegated = {
        let k = Kernel::boot();
        video_slices(&k, true, ROUNDS)
    };
    println!(
        "over {ROUNDS} scheduling rounds with 16 runnable threads:\n\
         \n  video thread slices without delegation: {plain}\n\
         video thread slices with UI handoff    : {delegated}\n"
    );
    println!(
        "the UI thread's schedule-delegate graft roughly doubles the video\n\
         thread's share whenever frames are pending — without touching the\n\
         global scheduler (which is a restricted graft point), and without\n\
         affecting threads that did not opt in (Rule 8 / Cao's principle)."
    );
    assert!(delegated > plain, "delegation must increase the video thread's share");
}

//! A top(1)-style view of the observability planes: attach a metrics
//! plane, a profile plane, and a watch plane to a booted kernel, drive
//! a mixed workload (a committing graft, an occasional aborter, a
//! quarantine-tripping crasher), then print the live health view, each
//! graft's Table-3-shaped overhead attribution, the cycle-ranked
//! hot-function table (docs/PROFILING.md), the firing alerts and
//! admission decisions (docs/WATCH.md), and the Prometheus-style
//! exposition (docs/METRICS.md).
//!
//! Run with: `cargo run --example vino_top`

use std::rc::Rc;

use vino::core::engine::InvokeOutcome;
use vino::core::kernel::point_names;
use vino::core::{AttachError, InstallError, InstallOpts, Kernel};
use vino::rm::{Limits, ResourceKind};
use vino::sim::metrics::MetricsPlane;
use vino::sim::profile::ProfilePlane;
use vino::sim::watch::WatchPlane;

fn main() {
    let kernel = Kernel::boot();
    let plane = MetricsPlane::new(Rc::clone(&kernel.clock));
    kernel.attach_metrics_plane(Rc::clone(&plane)).expect("first attach");

    // Attach-once: a second plane is refused, never silently swapped.
    let second = MetricsPlane::new(Rc::clone(&kernel.clock));
    assert_eq!(kernel.attach_metrics_plane(second), Err(AttachError::AlreadyAttached));
    assert!(Rc::ptr_eq(&kernel.metrics().expect("attached"), &plane));

    // The profile plane rides along: same charge sites, finer grain.
    let profile = ProfilePlane::new(Rc::clone(&kernel.clock));
    kernel.attach_profile_plane(Rc::clone(&profile)).expect("first attach");

    // The watch plane turns the metrics stream into SLO alerts, and a
    // firing alert turns into install-time backpressure: while a
    // principal's `abort-storm` alert is up, the admission gate defers
    // its next install (docs/WATCH.md).
    let watch = WatchPlane::new(Rc::clone(&kernel.clock));
    kernel.attach_watch_plane(Rc::clone(&watch)).expect("first attach");

    let app = kernel.create_app(Limits::of(&[(ResourceKind::KernelHeap, 1 << 20)]));
    let thread = kernel.spawn_thread("app");

    // A well-behaved key-value graft: commits on every invocation.
    let good = kernel
        .compile_graft("good-kv", "mov r2, r1\nconst r1, 5\ncall $kv_set\nhalt r2")
        .expect("compiles");
    for i in 0..32u64 {
        let g = kernel
            .install_function_graft(
                point_names::COMPUTE_RA,
                &good,
                app,
                thread,
                &InstallOpts::default(),
            )
            .expect("installs");
        let out = g.borrow_mut().invoke([i, 0, 0, 0]);
        assert!(matches!(out, InvokeOutcome::Ok { .. }));
    }

    // A sometimes-aborter: divides by args[0], so one in four calls
    // (arg 0, 4, 8, ...) traps and aborts — a visible abort rate.
    let flaky = kernel
        .compile_graft("flaky-div", "const r2, 4\nrem r3, r1, r2\ndiv r0, r1, r3\nhalt r0")
        .expect("compiles");
    // Both refusals are backoffs with a deadline, not bans: quarantine
    // is the graft's (reactive, after it misbehaved), admission is the
    // principal's (proactive, while its abort-storm alert is firing).
    // Waiting out the deadline and retrying always converges, because
    // the alert windows only decay with time.
    let install_or_wait = |image: &_| loop {
        match kernel.install_function_graft(
            point_names::COMPUTE_RA,
            image,
            app,
            thread,
            &InstallOpts::default(),
        ) {
            Ok(g) => break g,
            Err(
                InstallError::Quarantined { until, .. }
                | InstallError::AdmissionDenied { until, .. },
            ) => kernel.clock.advance_to(until),
            Err(e) => panic!("unexpected refusal: {e}"),
        }
    };
    for i in 0..16u64 {
        let g = install_or_wait(&flaky);
        let _ = g.borrow_mut().invoke([i, 0, 0, 0]);
    }

    // Let the flaky graft's aborts age out of the 1000 ms abort-storm
    // window first, so the crasher below is unambiguously what fires
    // the alert.
    kernel.clock.charge(vino::sim::Cycles::from_ms(2_000));

    // A hard crasher: three straight traps inside the abort-storm
    // window trip quarantine AND fire the `abort-storm` alert, so the
    // admission gate vetoes the principal's very next install.
    let bad =
        kernel.compile_graft("div0", "const r1, 0\ndiv r0, r1, r1\nhalt r0").expect("compiles");
    for _ in 0..3 {
        let g = install_or_wait(&bad);
        let out = g.borrow_mut().invoke([0; 4]);
        assert!(matches!(out, InvokeOutcome::Aborted { .. }));
    }
    let denied = kernel.install_function_graft(
        point_names::COMPUTE_RA,
        &good,
        app,
        thread,
        &InstallOpts::default(),
    );
    let Err(InstallError::AdmissionDenied { until: deny_until, .. }) = denied else {
        panic!("a firing abort-storm alert must defer the next install");
    };

    println!("== vino top — health (virtual cycle {}) ==", kernel.clock.now().get());
    print!("{}", plane.health());

    println!();
    println!("== per-graft overhead attribution (Table 3 components) ==");
    for tag in plane.tags_in_order() {
        print!("{}", plane.render_attribution(tag));
    }

    println!();
    println!("== hot functions (profile plane, cycle-ranked) ==");
    print!("{}", profile.render_top(10));

    println!();
    println!("== firing alerts (watch plane, docs/WATCH.md) ==");
    print!("{}", watch.snapshot());
    println!("alert stream:");
    print!("{}", watch.serialize());
    println!(
        "admission gate: {} — next install for principal {} deferred to virtual cycle {}",
        kernel.admission().stats(),
        app.0,
        deny_until.get(),
    );

    println!();
    println!("== replication shipping (vino-repl harness, docs/REPLICATION.md) ==");
    print!("{}", replication_section());

    println!();
    println!("== Prometheus exposition ==");
    print!("{}", plane.expose());
}

/// A second, self-contained pair of kernels: a few workload rounds
/// over a stalled ack path, so the shipping snapshot shows a live
/// window under pressure and the lag path attributes where the oldest
/// unacked record's age went.
fn replication_section() -> String {
    use vino::repl::{lag_path, ReplConfig, ReplHarness};
    use vino::sim::fault::FaultSite;

    let mut h = ReplHarness::new(0x70_0B5E, ReplConfig { window: 2, ..Default::default() });
    let fault = Rc::clone(h.fault_plane());
    fault.set_rate(FaultSite::ReplAckLoss, 1, 1);
    h.run(6);
    let s = h.shipping_state();
    let mut out = format!(
        "window       : {} records ({} in flight)\n\
         shipped      : up to seq {} ({} retransmits, {} frame drops)\n\
         acked        : seq {} (replica applied {})\n\
         lag          : {} records, {} virtual cycles old\n\
         nodes        : primary {}, replica {} ({} reboots)\n",
        s.window,
        s.in_flight,
        s.last_shipped,
        s.retransmits,
        s.frame_drops,
        s.last_acked,
        s.applied,
        s.lag,
        h.repl_lag_age().0,
        if s.primary_dead { "DEAD" } else { "alive" },
        if s.replica_reboots > 0 { "recovered" } else { "alive" },
        s.replica_reboots,
    );
    if let Some(report) = lag_path(&h) {
        out.push_str(&report.render());
        assert_eq!(report.total, h.watch_plane().repl_lag_age(), "lag path must reconcile");
        out.push_str("(per-hop sum reconciles exactly with the watch repl-lag-age gauge)\n");
    }
    out
}

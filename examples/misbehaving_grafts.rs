//! The disaster battery — every class of misbehaviour from §2, thrown
//! at the kernel, which must survive all of them (Table 1's rules).
//!
//! Run with: `cargo run --example misbehaving_grafts`

use vino::core::engine::{AbortedWhy, InvokeOutcome};
use vino::core::kernel::point_names;
use vino::core::{InstallOpts, Kernel};
use vino::misfit::VerifyError;
use vino::rm::{Limits, ResourceKind};
use vino::txn::LockClass;
use vino::vm::Trap;

fn main() {
    let kernel = Kernel::boot();
    let app = kernel.create_app(Limits::of(&[(ResourceKind::KernelHeap, 1 << 16)]));
    let thread = kernel.spawn_thread("attacker");
    kernel.fs.borrow_mut().create("victim", 16 * 4096).expect("create");
    let fd = kernel.fs.borrow_mut().open("victim").expect("open");
    let mut survived = 0;

    // 1. Illegal data access (§2.1): a wild store aimed at kernel
    //    memory. MiSFIT clamps it into the graft's own segment.
    let wild = kernel
        .compile_graft(
            "wild-store",
            "
            const r1, 0xC0000000
            const r2, 0x41414141
            storew r2, [r1+0]
            halt r0
            ",
        )
        .expect("compiles");
    let g =
        kernel.install_ra_graft(fd, &wild, app, thread, &InstallOpts::default()).expect("installs");
    kernel.fs.borrow_mut().read(fd, 0, 4096).expect("read");
    assert_eq!(g.borrow().mem_ref().kernel_write_count(), 0);
    println!("1. wild store     : confined to the graft segment (Rule 3)");
    survived += 1;

    // 2. Forbidden interface (§2.3): calling shutdown(). Rejected at
    //    link time — the graft never loads.
    let evil = kernel.compile_graft("shutdowner", "call $shutdown\nhalt r0").expect("compiles");
    let err = kernel
        .install_ra_graft(fd, &evil, app, thread, &InstallOpts::default())
        .expect_err("must not load");
    println!("2. call shutdown(): refused at link time — {err} (Rules 4/7)");
    survived += 1;

    // 3. Unsigned code (§3.3): an image whose signature does not match.
    let mut forged = kernel.compile_graft("forged", "halt r0").expect("compiles");
    forged.bytes[10] ^= 0xFF;
    let err = kernel
        .install_ra_graft(fd, &forged, app, thread, &InstallOpts::default())
        .expect_err("must not load");
    assert!(matches!(err, vino::core::InstallError::Verify(VerifyError::BadSignature)));
    println!("3. tampered image : signature check refused it (Rule 6)");
    survived += 1;

    // 4. Replacing a global policy without privilege (§2.3).
    let biased = kernel.compile_graft("biased-sched", "halt r1").expect("compiles");
    let err = kernel
        .install_function_graft(
            point_names::GLOBAL_SCHEDULER,
            &biased,
            app,
            thread,
            &InstallOpts::default(),
        )
        .expect_err("must not load");
    println!("4. global takeover: {err} (Rule 5)");
    survived += 1;

    // 5. Resource hoarding, quantity (§2.2): allocate beyond the limit.
    //    The graft got zero limits at install; the charge is denied and
    //    the transaction aborted.
    let hog = kernel
        .compile_graft("memory-hog", "const r1, 104857600\ncall $kalloc\nhalt r0")
        .expect("compiles");
    let g =
        kernel.install_ra_graft(fd, &hog, app, thread, &InstallOpts::default()).expect("installs");
    kernel.fs.borrow_mut().read(fd, 4096, 4096).expect("read");
    assert!(g.borrow().is_dead());
    println!("5. 100MB kalloc   : denied by resource limits, graft unloaded (Rule 2)");
    survived += 1;

    // 6. Resource hoarding, time (§2.2): the malicious fragment
    //    `lock(resourceA); while(1);`. The lock times out, the holder's
    //    transaction is aborted, and the waiter makes progress.
    let (_handle, lock_id) = kernel.engine.register_lock(LockClass::Buffer);
    let spinner = kernel
        .compile_graft("lock-and-spin", "const r1, 0\ncall $lock\nspin: jmp spin")
        .expect("compiles");
    let g = kernel
        .install_ra_graft(fd, &spinner, app, thread, &InstallOpts::default())
        .expect("installs");
    {
        // Cap its CPU budget so the demo terminates promptly.
        g.borrow_mut().max_slices = 2;
    }
    kernel.fs.borrow_mut().read(fd, 8192, 4096).expect("read");
    assert!(g.borrow().is_dead());
    assert_eq!(
        kernel.engine.txn.borrow().lock_table().holder(lock_id),
        None,
        "abort released the hoarded lock"
    );
    println!("6. lock + while(1): preempted, aborted, lock released (Rules 1/2/9)");
    survived += 1;

    // 7. State corruption undone: a graft mutates kernel state through
    //    the accessor, then traps — the undo call stack restores it.
    kernel.engine.kv_write(7, 1234);
    let corruptor = kernel
        .compile_graft(
            "corrupt-then-crash",
            "
            const r1, 7
            const r2, 9999
            call $kv_set
            const r3, 0
            div r0, r2, r3
            halt r0
            ",
        )
        .expect("compiles");
    let g = kernel
        .install_ra_graft(fd, &corruptor, app, thread, &InstallOpts::default())
        .expect("installs");
    kernel.fs.borrow_mut().read(fd, 12288, 4096).expect("read");
    assert!(g.borrow().is_dead());
    assert_eq!(kernel.engine.kv_read(7), 1234, "undo restored the slot");
    println!("7. corrupt + crash: transaction undo restored kernel state (§3.1)");
    survived += 1;

    // 8. Covert denial of service (§2.5): an event handler that never
    //    returns. The CPU-slice detector aborts it and later events
    //    still flow.
    kernel.define_event_point(vino::dev::Port(80));
    let stall = kernel.compile_graft("staller", "spin: jmp spin").expect("compiles");
    let g = kernel
        .install_event_graft(vino::dev::Port(80), 0, &stall, app, &InstallOpts::default())
        .expect("installs");
    g.borrow_mut().max_slices = 2;
    kernel.nic.borrow_mut().inject_tcp_connect(vino::dev::Port(80));
    let reports = kernel.dispatch_net_events();
    match &reports[0].handlers[0].outcome {
        InvokeOutcome::Aborted { why: AbortedWhy::CpuHog, .. } => {}
        other => panic!("expected CpuHog abort, got {other:?}"),
    }
    println!("8. stalling server: detected as a CPU hog and aborted (Rule 9, §2.5)");
    survived += 1;

    // 9. Indirect call to a forbidden function at run time.
    let jumper =
        kernel.compile_graft("wild-jumper", "const r5, 100\ncalli r5\nhalt r0").expect("compiles");
    let g = kernel
        .install_ra_graft(fd, &jumper, app, thread, &InstallOpts::default())
        .expect("installs");
    kernel.fs.borrow_mut().read(fd, 0, 4096).expect("read");
    {
        let inst = g.borrow();
        assert!(inst.is_dead());
    }
    let _ = Trap::DivByZero; // (type used in match arms above)
    println!("9. wild calli     : CheckCall probe trapped it at run time (Rule 7)");
    survived += 1;

    println!("\nall {survived} attacks survived; the kernel is still serving:");
    let data = kernel.fs.borrow_mut().read(fd, 0, 16).expect("kernel alive");
    println!(
        "  post-battery read of {} bytes succeeded; clock at {:.1} ms",
        data.len(),
        kernel.clock.now().as_ms()
    );
}

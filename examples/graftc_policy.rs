//! Writing grafts in GraftC — the C-like language standing in for the
//! paper's C++ (§3: VINO extensions are "written in C++ and protected
//! using software fault isolation").
//!
//! This example writes a read-ahead policy and an event handler in
//! GraftC, compiles them through the full pipeline (compile → MiSFIT
//! instrument → sign → verify → link-audit → load), and runs them. It
//! also shows the toolchain refusing a graft that calls a forbidden
//! kernel function — the rejection happens at *link* time, after a
//! perfectly successful compile, exactly like the paper's flow.
//!
//! Run with: `cargo run --release -p vino --example graftc_policy`

use vino::core::{InstallOpts, Kernel};
use vino::dev::Port;
use vino::rm::{Limits, ResourceKind};

fn main() {
    let kernel = Kernel::boot();
    let app = kernel.create_app(Limits::of(&[(ResourceKind::KernelHeap, 1 << 20)]));
    let thread = kernel.spawn_thread("app");
    kernel.fs.borrow_mut().create("db", 256 * 4096).expect("create");
    let fd = kernel.fs.borrow_mut().open("db").expect("open");

    // A window read-ahead policy in GraftC: prefetch the next two
    // blocks after every read, but never past end-of-file.
    let ra_src = "
        // r1..r2: offset and length of the read just performed.
        fn main(offset, len, seq, filesize) {
            let next = offset + len;
            let n = 0;
            while (n < 2) {
                if (next + 4096 <= filesize) {
                    ra_submit(next, 4096);
                }
                next = next + 4096;
                n = n + 1;
            }
            return 0;
        }
    ";
    let image = kernel.compile_graft_c("window-ra", ra_src).expect("compiles");
    kernel.install_ra_graft(fd, &image, app, thread, &InstallOpts::default()).expect("installs");
    for block in [3u64, 9, 40] {
        kernel.fs.borrow_mut().read(fd, block * 4096, 4096).expect("read");
    }
    let stats = kernel.fs.borrow().stats();
    println!(
        "window read-ahead graft (GraftC): {} graft calls, {} prefetches issued",
        stats.ra_graft_calls, stats.prefetches_issued
    );
    assert_eq!(stats.prefetches_issued, 6, "two prefetches per read");

    // A rate-limiting event handler in GraftC: serve at most 3
    // connections, then start refusing (returning 1).
    kernel.define_event_point(Port(80));
    let handler_src = "
        fn main(port, conn_fd) {
            let served = kv_get(12);
            if (served >= 3) {
                return 1; // refused
            }
            kv_set(12, served + 1);
            log(conn_fd);
            return 0; // served
        }
    ";
    let handler = kernel.compile_graft_c("rate-limiter", handler_src).expect("compiles");
    kernel
        .install_event_graft(Port(80), 0, &handler, app, &InstallOpts::default())
        .expect("installs");
    for _ in 0..5 {
        kernel.nic.borrow_mut().inject_tcp_connect(Port(80));
    }
    let reports = kernel.dispatch_net_events();
    let refused = reports.iter().filter(|r| r.handlers[0].outcome.result() == Some(1)).count();
    println!(
        "rate-limiting handler (GraftC): {} events, {} refused, {} served",
        reports.len(),
        refused,
        kernel.engine.kv_read(12)
    );
    assert_eq!(kernel.engine.kv_read(12), 3);
    assert_eq!(refused, 2);

    // The toolchain compiles this fine — and the *linker* rejects it,
    // because shutdown() is not graft-callable (§2.3).
    let evil_src = "fn main() { shutdown(); return 0; }";
    let evil = kernel.compile_graft_c("evil", evil_src).expect("compiles cleanly");
    let err = kernel
        .install_ra_graft(fd, &evil, app, thread, &InstallOpts::default())
        .expect_err("link audit must refuse");
    println!("\nshutdown() graft: compiled fine, then refused at load — {err}");
}

//! The trace plane and abort flight recorder, end to end: attach one
//! trace plane to a booted kernel, let a graft die, and read back the
//! canonical event stream and the post-mortem (docs/TRACING.md).
//!
//! Run with: `cargo run --example flight_recorder`

use std::rc::Rc;

use vino::core::engine::InvokeOutcome;
use vino::core::kernel::point_names;
use vino::core::{AttachError, InstallOpts, Kernel};
use vino::rm::{Limits, ResourceKind};
use vino::sim::trace::TracePlane;

fn main() {
    let kernel = Kernel::boot();
    let plane = TracePlane::with_capacity(Rc::clone(&kernel.clock), 1024);
    kernel.attach_trace_plane(Rc::clone(&plane)).expect("first attach");

    // Attach-once: a second plane is refused, never silently swapped.
    let second = TracePlane::with_capacity(Rc::clone(&kernel.clock), 64);
    assert_eq!(kernel.attach_trace_plane(second), Err(AttachError::AlreadyAttached));

    let app = kernel.create_app(Limits::of(&[(ResourceKind::KernelHeap, 1 << 16)]));
    let thread = kernel.spawn_thread("app");

    // A well-behaved graft commits; the recorder stays empty.
    let good = kernel.compile_graft("good", "mov r0, r1\nhalt r0").expect("compiles");
    let g = kernel
        .install_function_graft(
            point_names::COMPUTE_RA,
            &good,
            app,
            thread,
            &InstallOpts::default(),
        )
        .expect("installs");
    assert!(matches!(g.borrow_mut().invoke([42, 0, 0, 0]), InvokeOutcome::Ok { result: 42, .. }));
    assert!(kernel.post_mortem().is_none(), "clean commit, no post-mortem");

    // A corruptor mutates kernel state and traps; the wrapper aborts,
    // undoes, unloads — and the flight recorder snapshots the scene.
    let bad = kernel
        .compile_graft(
            "corruptor",
            "
            const r1, 5
            const r2, 99
            call $kv_set
            const r3, 0
            div r0, r3, r3
            halt r0
            ",
        )
        .expect("compiles");
    let g = kernel
        .install_function_graft(point_names::COMPUTE_RA, &bad, app, thread, &InstallOpts::default())
        .expect("installs");
    assert!(matches!(g.borrow_mut().invoke([0; 4]), InvokeOutcome::Aborted { .. }));

    println!("-- canonical trace ({} events) --", plane.stats().total);
    print!("{}", plane.serialize());
    println!();
    let pm = kernel.post_mortem().expect("the abort left a post-mortem");
    println!("{pm}");
    println!("trace stats: {}", plane.stats());
}

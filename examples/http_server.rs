//! The §3.5 event-graft model: drop an HTTP server into the kernel.
//!
//! "When an event occurs in the kernel (e.g., a new connection is
//! established on the TCP port dedicated to HTTP), VINO spawns a worker
//! thread and begins a transaction. It then invokes the grafted
//! function (passing it a file descriptor or other data required to
//! process the event)."
//!
//! This example installs two handlers on TCP port 80 — an access logger
//! (order 0) and the server proper (order 1) — plus a deliberately
//! broken third handler, and shows that the broken one is aborted and
//! unloaded while events keep flowing (Rule 9).
//!
//! Run with: `cargo run --example http_server`

use vino::core::engine::InvokeOutcome;
use vino::core::{InstallOpts, Kernel};
use vino::dev::Port;
use vino::rm::{Limits, ResourceKind};

fn main() {
    let kernel = Kernel::boot();
    let app = kernel.create_app(Limits::of(&[(ResourceKind::KernelHeap, 1 << 20)]));
    kernel.define_event_point(Port(80));

    // Handler 1: the access logger. Counts connections in kernel-state
    // slot 1 through the accessor protocol (undo-logged, so an aborted
    // dispatch never corrupts the counter).
    let logger = kernel
        .compile_graft(
            "access-log",
            "
            ; r1 = port, r2 = connection fd
            mov r6, r2
            const r1, 1
            call $kv_get        ; current count
            addi r2, r0, 1
            const r1, 1
            call $kv_set
            mov r1, r6          ; also log the fd we saw
            call $log
            halt r0
            ",
        )
        .expect("compiles");
    kernel
        .install_event_graft(Port(80), 0, &logger, app, &InstallOpts::default())
        .expect("installs");

    // Handler 2: the "server". Records the last fd served in slot 2.
    let server = kernel
        .compile_graft(
            "http-server",
            "
            ; r1 = port, r2 = connection fd. 'Serve' the request.
            const r1, 2
            call $kv_set
            halt r2
            ",
        )
        .expect("compiles");
    kernel
        .install_event_graft(Port(80), 1, &server, app, &InstallOpts::default())
        .expect("installs");

    // Handler 3: malicious — tries to jump to an arbitrary kernel
    // function through a pointer. The CheckCall probe traps it.
    let evil = kernel
        .compile_graft(
            "evil-handler",
            "
            const r5, 666       ; not on the graft-callable list
            calli r5
            halt r0
            ",
        )
        .expect("compiles");
    kernel.install_event_graft(Port(80), 2, &evil, app, &InstallOpts::default()).expect("installs");

    // Traffic: five connections arrive.
    for _ in 0..5 {
        kernel.nic.borrow_mut().inject_tcp_connect(Port(80));
    }
    let reports = kernel.dispatch_net_events();
    println!("dispatched {} events on port 80", reports.len());
    for (i, r) in reports.iter().enumerate() {
        let outcomes: Vec<String> = r
            .handlers
            .iter()
            .map(|h| {
                let o = match &h.outcome {
                    InvokeOutcome::Ok { result, .. } => format!("ok({result})"),
                    InvokeOutcome::Aborted { why, .. } => format!("ABORTED({why:?})"),
                    InvokeOutcome::Dead => "dead".to_string(),
                };
                format!("{}:{}", h.graft, o)
            })
            .collect();
        println!("  event {i}: {}", outcomes.join("  "));
    }

    println!(
        "\nconnections logged: {} (kernel slot 1), last served fd: {} (slot 2)",
        kernel.engine.kv_read(1),
        kernel.engine.kv_read(2)
    );
    println!("the evil handler was aborted on event 0 and unloaded; the other two kept serving.");
    assert_eq!(kernel.engine.kv_read(1), 5, "all five connections logged");
}
